//! Minimal fork/join helper over immutable inputs, built on crossbeam's
//! scoped threads. Results are written into per-index slots, so the output
//! is identical regardless of thread count or scheduling.

/// Applies `f` to every index in `0..n`, splitting the range across up to
/// `threads` workers. Falls back to a sequential loop for tiny inputs.
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 64 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for slice in out.chunks_mut(chunk).enumerate() {
            let (chunk_idx, slots) = slice;
            let f = &f;
            scope.spawn(move |_| {
                let base = chunk_idx * chunk;
                for (offset, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(base + offset));
                }
            });
        }
    })
    .expect("worker panicked");
    out.into_iter()
        .map(|slot| slot.expect("all slots filled"))
        .collect()
}

/// Number of worker threads to use by default: the machine's available
/// parallelism, capped to keep fork/join overhead sensible.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let seq: Vec<usize> = (0..1000).map(|i| i * i).collect();
        let par = map_indexed(1000, 4, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn small_inputs_and_single_thread() {
        assert_eq!(map_indexed(3, 8, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(map_indexed(100, 1, |i| i), (0..100).collect::<Vec<_>>());
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn uneven_chunks_cover_all_indices() {
        let out = map_indexed(257, 4, |i| i);
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }
}
