//! Nearest-shape assignment: how extracted shapes become cluster centroids
//! (§V-D) or classification criteria (§V-E), plus DTW-based matching of
//! extracted shapes to ground-truth centers (Figs. 8/10).

use privshape_distance::{DistanceKind, DistanceWorkspace, Dtw};
use privshape_timeseries::{CandidateTable, SymbolSeq};

/// A 1-NN classifier whose prototypes are extracted shapes.
#[derive(Debug, Clone)]
pub struct NearestShape {
    shapes: Vec<(SymbolSeq, usize)>,
    /// The prototypes packed once at construction, so every query scores
    /// through the prefix-resumable, early-abandoned table scorer.
    table: CandidateTable,
    distance: DistanceKind,
}

impl NearestShape {
    /// Builds the classifier from `(shape, label)` prototypes.
    ///
    /// # Panics
    ///
    /// Panics if no prototype is given.
    pub fn new(shapes: Vec<(SymbolSeq, usize)>, distance: DistanceKind) -> Self {
        assert!(!shapes.is_empty(), "need at least one prototype shape");
        let mut table =
            CandidateTable::with_capacity(shapes.len(), shapes.iter().map(|(s, _)| s.len()).sum());
        for (shape, _) in &shapes {
            table.push_seq(shape);
        }
        Self {
            shapes,
            table,
            distance,
        }
    }

    /// Builds an *unlabeled* variant where each shape is its own class —
    /// the clustering use-case (shape index = cluster id).
    pub fn from_centroids(shapes: Vec<SymbolSeq>, distance: DistanceKind) -> Self {
        let labeled = shapes
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, i))
            .collect();
        Self::new(labeled, distance)
    }

    /// Prototypes.
    pub fn shapes(&self) -> &[(SymbolSeq, usize)] {
        &self.shapes
    }

    /// The label of the nearest prototype (ties toward the earlier
    /// prototype, keeping assignment deterministic).
    pub fn classify(&self, query: &SymbolSeq) -> usize {
        self.nearest(query).1
    }

    /// `(prototype index, label, distance)` of the nearest prototype.
    /// One workspace is reused across the prototype loop.
    pub fn nearest(&self, query: &SymbolSeq) -> (usize, usize, f64) {
        let mut ws = DistanceWorkspace::new();
        self.nearest_with(&mut ws, query)
    }

    /// [`NearestShape::nearest`] scoring through a caller-provided
    /// workspace (batch loops keep one workspace across all queries).
    ///
    /// Runs the prefix-resumable argmin scan over the packed prototype
    /// table — shared-prefix prototypes reuse DP rows, and subtrees whose
    /// shared rows already exceed the running best are abandoned early.
    /// Ties resolve to the earlier prototype, as before.
    pub fn nearest_with(
        &self,
        ws: &mut DistanceWorkspace,
        query: &SymbolSeq,
    ) -> (usize, usize, f64) {
        let (i, d) = self
            .distance
            .argmin_table(ws, query.symbols(), &self.table)
            .expect("table is non-empty by construction");
        (i, self.shapes[i].1, d)
    }

    /// Classifies a batch through one shared workspace (no per-pair
    /// allocation).
    pub fn classify_batch(&self, queries: &[SymbolSeq]) -> Vec<usize> {
        let mut ws = DistanceWorkspace::new();
        queries
            .iter()
            .map(|q| self.nearest_with(&mut ws, q).1)
            .collect()
    }
}

/// Greedily matches extracted centers to ground-truth centers by ascending
/// DTW distance (the center-matching step of Figs. 8 and 10). Returns
/// `matches[i] = Some(j)`: extracted center `i` ↔ truth center `j`; extras
/// on either side stay unmatched.
pub fn match_centers(extracted: &[Vec<f64>], truth: &[Vec<f64>]) -> Vec<Option<usize>> {
    // One DTW engine across the |extracted| × |truth| grid: the DP rows
    // are allocated once, not per pair.
    let mut engine = Dtw::new();
    let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
    for (i, e) in extracted.iter().enumerate() {
        for (j, t) in truth.iter().enumerate() {
            pairs.push((engine.dist(e, t), i, j));
        }
    }
    pairs.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap()
            .then((a.1, a.2).cmp(&(b.1, b.2)))
    });
    let mut matches = vec![None; extracted.len()];
    let mut used_truth = vec![false; truth.len()];
    for (_, i, j) in pairs {
        if matches[i].is_none() && !used_truth[j] {
            matches[i] = Some(j);
            used_truth[j] = true;
        }
    }
    matches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> SymbolSeq {
        SymbolSeq::parse(s).unwrap()
    }

    #[test]
    fn classify_picks_nearest_prototype() {
        let clf = NearestShape::new(vec![(seq("abab"), 0), (seq("cdcd"), 1)], DistanceKind::Sed);
        assert_eq!(clf.classify(&seq("abab")), 0);
        assert_eq!(clf.classify(&seq("abad")), 0);
        assert_eq!(clf.classify(&seq("cdce")), 1);
    }

    #[test]
    fn from_centroids_uses_indices_as_labels() {
        let clf = NearestShape::from_centroids(vec![seq("ab"), seq("ba")], DistanceKind::Dtw);
        assert_eq!(clf.classify(&seq("ab")), 0);
        assert_eq!(clf.classify(&seq("ba")), 1);
        assert_eq!(clf.shapes().len(), 2);
    }

    #[test]
    fn nearest_reports_distance() {
        let clf = NearestShape::new(vec![(seq("abc"), 7)], DistanceKind::Sed);
        let (idx, label, d) = clf.nearest(&seq("abd"));
        assert_eq!((idx, label), (0, 7));
        assert_eq!(d, 1.0);
    }

    #[test]
    fn batch_matches_single() {
        let clf = NearestShape::new(
            vec![(seq("aaab"), 0), (seq("bbba"), 1)],
            DistanceKind::Euclidean,
        );
        let queries = vec![seq("aaab"), seq("bbba"), seq("aab")];
        let batch = clf.classify_batch(&queries);
        let single: Vec<usize> = queries.iter().map(|q| clf.classify(q)).collect();
        assert_eq!(batch, single);
    }

    #[test]
    fn center_matching_is_a_partial_bijection() {
        let truth = vec![
            vec![0.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0],
            vec![-1.0, -1.0, -1.0],
        ];
        let extracted = vec![vec![0.9, 1.1, 1.0], vec![0.1, -0.1, 0.0]];
        let m = match_centers(&extracted, &truth);
        assert_eq!(m, vec![Some(1), Some(0)]);
    }

    #[test]
    fn extra_extracted_centers_stay_unmatched() {
        let truth = vec![vec![0.0, 0.0]];
        let extracted = vec![vec![0.0, 0.1], vec![5.0, 5.0]];
        let m = match_centers(&extracted, &truth);
        assert_eq!(m[0], Some(0));
        assert_eq!(m[1], None);
    }

    #[test]
    #[should_panic(expected = "at least one prototype")]
    fn rejects_empty_prototypes() {
        NearestShape::new(vec![], DistanceKind::Dtw);
    }
}
