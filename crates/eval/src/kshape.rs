//! KShape clustering (Paparrizos & Gravano, SIGMOD 2015).
//!
//! The paper uses KShape to extract ground-truth shape centers on the Trace
//! dataset (Fig. 10) because its shape-based distance (SBD) — one minus the
//! maximal normalized cross-correlation over all shifts — is insensitive to
//! phase but sensitive to shape, "suitable to capture shapes from time
//! series that are not warping".

use crate::linalg::{dominant_eigenvector, l2_norm, z_normalize};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Shape-based distance between two z-normalizable sequences.
///
/// Returns `(distance, shift)` where `distance = 1 − max_s NCC_c(a, b; s)`
/// lies in `[0, 2]` and `shift` is the argmax lag of `b` relative to `a`
/// (positive ⇒ `b` delayed). Sequences are z-normalized internally.
#[allow(clippy::needless_range_loop)] // the lag loop indexes a shifted window
pub fn sbd(a: &[f64], b: &[f64]) -> (f64, isize) {
    assert!(!a.is_empty() && !b.is_empty(), "SBD needs non-empty inputs");
    let az = z_normalize(a);
    let bz = z_normalize(b);
    let denom = l2_norm(&az) * l2_norm(&bz);
    if denom < 1e-30 {
        // At least one side is constant: no shape information, maximal
        // distance by convention.
        return (1.0, 0);
    }
    let n = az.len();
    let m = bz.len();
    let mut best = f64::NEG_INFINITY;
    let mut best_shift = 0isize;
    // Cross-correlation over all lags, O(n·m) — series here are ≤ a few
    // hundred points, so the direct sum beats FFT bookkeeping.
    for shift in -(m as isize - 1)..(n as isize) {
        let mut acc = 0.0;
        for j in 0..m {
            let i = shift + j as isize;
            if i >= 0 && (i as usize) < n {
                acc += az[i as usize] * bz[j];
            }
        }
        let ncc = acc / denom;
        if ncc > best {
            best = ncc;
            best_shift = shift;
        }
    }
    (1.0 - best, best_shift)
}

/// Aligns `b` to `a` under the optimal SBD shift (zero-padding the gap).
fn align_to(a: &[f64], b: &[f64]) -> Vec<f64> {
    let (_, shift) = sbd(a, b);
    let n = a.len();
    let mut out = vec![0.0; n];
    for (j, &v) in b.iter().enumerate() {
        let i = shift + j as isize;
        if i >= 0 && (i as usize) < n {
            out[i as usize] = v;
        }
    }
    out
}

/// KShape's shape extraction: the centroid maximizing the summed squared
/// NCC to the (aligned, z-normalized) members — the dominant eigenvector of
/// `M = Q Sᵀ S Q` with `Q` the centering matrix.
///
/// `reference` fixes the alignment target and the sign of the result;
/// the output is z-normalized. Empty `members` returns the reference.
pub fn shape_extraction(members: &[&[f64]], reference: &[f64]) -> Vec<f64> {
    let n = reference.len();
    if members.is_empty() {
        return z_normalize(reference);
    }
    // S = Σ yᵀy over aligned members.
    let mut s = vec![vec![0.0; n]; n];
    for member in members {
        let aligned = z_normalize(&align_to(reference, member));
        for i in 0..n {
            if aligned[i] == 0.0 {
                continue;
            }
            for j in 0..n {
                s[i][j] += aligned[i] * aligned[j];
            }
        }
    }
    // M = Q S Q, Q = I − (1/n)·J; computed as S minus row/col means plus
    // the grand mean.
    let row_means: Vec<f64> = s
        .iter()
        .map(|row| row.iter().sum::<f64>() / n as f64)
        .collect();
    let grand = row_means.iter().sum::<f64>() / n as f64;
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            m[i][j] = s[i][j] - row_means[i] - row_means[j] + grand;
        }
    }
    let mut centroid = dominant_eigenvector(&m, 300, 1e-10);
    // Eigenvectors have arbitrary sign: orient toward the reference.
    let dot: f64 = centroid.iter().zip(reference).map(|(a, b)| a * b).sum();
    if dot < 0.0 {
        centroid.iter_mut().for_each(|x| *x = -*x);
    }
    z_normalize(&centroid)
}

/// KShape configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KShape {
    /// Number of clusters.
    pub k: usize,
    /// Maximum refinement iterations.
    pub max_iter: usize,
    /// Master seed for the initial random assignment.
    pub seed: u64,
}

impl KShape {
    /// Default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iter: 20,
            seed: 0,
        }
    }
}

/// A fitted KShape clustering.
#[derive(Debug, Clone)]
pub struct KShapeFit {
    /// Per-series cluster assignment.
    pub labels: Vec<usize>,
    /// Z-normalized cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Refinement iterations used.
    pub iterations: usize,
}

impl KShape {
    /// Fits KShape to equal-length series.
    ///
    /// # Panics
    ///
    /// Panics on empty data, inconsistent lengths, or `k` outside `[1, n]`.
    pub fn fit(&self, data: &[Vec<f64>]) -> KShapeFit {
        assert!(!data.is_empty(), "KShape needs data");
        let len = data[0].len();
        assert!(
            data.iter().all(|row| row.len() == len),
            "series must share a length"
        );
        assert!(self.k >= 1 && self.k <= data.len(), "k must be in [1, n]");

        let mut rng = ChaCha12Rng::seed_from_u64(self.seed);
        let mut labels: Vec<usize> = (0..data.len())
            .map(|i| {
                // Balanced random initial assignment.
                let _ = rng.random::<u32>();
                i % self.k
            })
            .collect();
        let mut centroids: Vec<Vec<f64>> = vec![vec![0.0; len]; self.k];
        let mut iterations = 0;

        for iter in 0..self.max_iter {
            iterations = iter + 1;
            // Refinement: new centroid per cluster.
            #[allow(clippy::needless_range_loop)] // c is also the label being matched
            for c in 0..self.k {
                let members: Vec<&[f64]> = data
                    .iter()
                    .zip(&labels)
                    .filter(|(_, &l)| l == c)
                    .map(|(row, _)| row.as_slice())
                    .collect();
                let reference = if l2_norm(&centroids[c]) < 1e-12 {
                    members.first().copied().unwrap_or(&centroids[c]).to_vec()
                } else {
                    centroids[c].clone()
                };
                centroids[c] = shape_extraction(&members, &reference);
            }
            // Assignment: nearest centroid under SBD.
            let mut changed = 0usize;
            for (i, row) in data.iter().enumerate() {
                let mut best = (labels[i], f64::INFINITY);
                for (c, centroid) in centroids.iter().enumerate() {
                    if l2_norm(centroid) < 1e-12 {
                        continue;
                    }
                    let (d, _) = sbd(centroid, row);
                    if d < best.1 {
                        best = (c, d);
                    }
                }
                if best.0 != labels[i] {
                    labels[i] = best.0;
                    changed += 1;
                }
            }
            if changed == 0 {
                break;
            }
        }
        KShapeFit {
            labels,
            centroids,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / n as f64 + phase).sin())
            .collect()
    }

    fn square(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                if (i / (n / 4)).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect()
    }

    #[test]
    fn sbd_zero_on_identical_and_shift_invariant() {
        let a = sine(64, 0.0);
        let (d, shift) = sbd(&a, &a);
        assert!(d < 1e-9);
        assert_eq!(shift, 0);
        // A circular phase shift is nearly free for SBD.
        let shifted = sine(64, 0.5);
        let (d2, _) = sbd(&a, &shifted);
        assert!(d2 < 0.2, "d2={d2}");
    }

    #[test]
    fn sbd_separates_different_shapes() {
        let (d, _) = sbd(&sine(64, 0.0), &square(64));
        let (d_same, _) = sbd(&sine(64, 0.0), &sine(64, 0.1));
        assert!(d > d_same * 2.0, "d={d} d_same={d_same}");
    }

    #[test]
    fn sbd_constant_input_is_maximal_by_convention() {
        let (d, _) = sbd(&[1.0; 10], &sine(10, 0.0));
        assert_eq!(d, 1.0);
    }

    #[test]
    fn sbd_symmetricish_in_distance() {
        // Distance is symmetric (shift flips sign).
        let a = sine(48, 0.0);
        let b = square(48);
        let (dab, sab) = sbd(&a, &b);
        let (dba, sba) = sbd(&b, &a);
        assert!((dab - dba).abs() < 1e-9);
        assert_eq!(sab, -sba);
    }

    #[test]
    fn shape_extraction_recovers_common_shape() {
        let members_owned: Vec<Vec<f64>> = (0..8).map(|p| sine(48, p as f64 * 0.1)).collect();
        let members: Vec<&[f64]> = members_owned.iter().map(|m| m.as_slice()).collect();
        let centroid = shape_extraction(&members, &members_owned[0]);
        let (d, _) = sbd(&centroid, &members_owned[0]);
        assert!(d < 0.1, "centroid too far from members: {d}");
    }

    #[test]
    fn kshape_separates_two_shape_classes() {
        let mut data = Vec::new();
        let mut truth = Vec::new();
        for p in 0..10 {
            data.push(sine(48, p as f64 * 0.15));
            truth.push(0usize);
        }
        for _ in 0..10 {
            data.push(square(48));
            truth.push(1usize);
        }
        let fit = KShape::new(2).fit(&data);
        let ari = crate::metrics::adjusted_rand_index(&fit.labels, &truth);
        assert!(ari > 0.8, "ARI={ari}");
    }

    #[test]
    fn kshape_deterministic() {
        let data: Vec<Vec<f64>> = (0..8).map(|p| sine(32, p as f64 * 0.2)).collect();
        let a = KShape {
            seed: 5,
            ..KShape::new(2)
        }
        .fit(&data);
        let b = KShape {
            seed: 5,
            ..KShape::new(2)
        }
        .fit(&data);
        assert_eq!(a.labels, b.labels);
    }
}
