//! Evaluation metrics: Adjusted Rand Index for clustering (§V-C) and
//! accuracy / confusion matrices for classification (§V-E).

/// Adjusted Rand Index between two labelings of the same points
/// (Hubert & Arabie 1985). Ranges over `[−1, 1]`; 1 ⇔ identical
/// partitions, ≈ 0 for independent random partitions.
///
/// # Panics
///
/// Panics if the labelings differ in length or are empty.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must align");
    assert!(!a.is_empty(), "labelings must be non-empty");
    let ka = a.iter().copied().max().expect("non-empty") + 1;
    let kb = b.iter().copied().max().expect("non-empty") + 1;

    // Contingency table.
    let mut table = vec![vec![0u64; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x][y] += 1;
    }
    let row_sums: Vec<u64> = table.iter().map(|row| row.iter().sum()).collect();
    let col_sums: Vec<u64> = (0..kb)
        .map(|j| table.iter().map(|row| row[j]).sum())
        .collect();

    let choose2 = |x: u64| (x * x.saturating_sub(1)) as f64 / 2.0;
    let sum_cells: f64 = table.iter().flatten().map(|&c| choose2(c)).sum();
    let sum_rows: f64 = row_sums.iter().map(|&c| choose2(c)).sum();
    let sum_cols: f64 = col_sums.iter().map(|&c| choose2(c)).sum();
    let total = choose2(a.len() as u64);

    let expected = sum_rows * sum_cols / total;
    let max_index = (sum_rows + sum_cols) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate partitions (e.g. both all-in-one-cluster): identical
        // partitions score 1, anything else 0.
        return if sum_cells == max_index { 1.0 } else { 0.0 };
    }
    (sum_cells - expected) / (max_index - expected)
}

/// Fraction of predictions equal to the ground truth.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "prediction/truth mismatch");
    assert!(!predicted.is_empty(), "need at least one prediction");
    let hits = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / predicted.len() as f64
}

/// A confusion matrix over `n_classes` labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n_classes: usize,
    /// `cells[truth][predicted]`.
    cells: Vec<u64>,
}

impl ConfusionMatrix {
    /// Builds the matrix from aligned predictions and truths.
    pub fn new(predicted: &[usize], truth: &[usize]) -> Self {
        assert_eq!(predicted.len(), truth.len(), "prediction/truth mismatch");
        let n_classes = predicted
            .iter()
            .chain(truth)
            .copied()
            .max()
            .map_or(0, |m| m + 1);
        let mut cells = vec![0u64; n_classes * n_classes];
        for (&p, &t) in predicted.iter().zip(truth) {
            cells[t * n_classes + p] += 1;
        }
        Self { n_classes, cells }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Count of points with true class `truth` predicted as `predicted`.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.cells[truth * self.n_classes + predicted]
    }

    /// Per-class recall (`None` when a class has no true instances).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let total: u64 = (0..self.n_classes).map(|p| self.count(class, p)).sum();
        if total == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / total as f64)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.n_classes).map(|c| self.count(c, c)).sum();
        let total: u64 = self.cells.iter().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ari_is_one_on_identical_partitions() {
        let a = [0, 0, 1, 1, 2, 2];
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        // Label permutation does not matter.
        let b = [2, 2, 0, 0, 1, 1];
        assert_eq!(adjusted_rand_index(&a, &b), 1.0);
    }

    #[test]
    fn ari_is_low_for_unrelated_partitions() {
        // A partition vs. an interleaved one.
        let a = [0, 0, 0, 0, 1, 1, 1, 1];
        let b = [0, 1, 0, 1, 0, 1, 0, 1];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari < 0.1, "ari={ari}");
    }

    #[test]
    fn ari_degenerate_partitions() {
        let all_one = [0, 0, 0, 0];
        assert_eq!(adjusted_rand_index(&all_one, &all_one), 1.0);
        let split = [0, 0, 1, 1];
        assert_eq!(adjusted_rand_index(&all_one, &split), 0.0);
    }

    #[test]
    fn ari_known_values() {
        // Hand-checked: contingency [[2,0],[1,2]] ⇒ ARI = 1/6.
        let a = [0, 0, 1, 1, 1];
        let b = [0, 0, 1, 1, 0];
        let ari = adjusted_rand_index(&a, &b);
        assert!((ari - 1.0 / 6.0).abs() < 1e-9, "ari={ari}");
        // Hand-checked: index equals expected index ⇒ ARI = 0 exactly.
        let c = [0, 0, 1, 1];
        let d = [0, 0, 0, 1];
        assert_eq!(adjusted_rand_index(&c, &d), 0.0);
    }

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    fn confusion_matrix_cells_and_recall() {
        let pred = [0, 0, 1, 1, 1];
        let truth = [0, 1, 1, 1, 0];
        let cm = ConfusionMatrix::new(&pred, &truth);
        assert_eq!(cm.n_classes(), 2);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert_eq!(cm.recall(0), Some(0.5));
        assert_eq!(cm.recall(1), Some(2.0 / 3.0));
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
        assert_eq!(cm.accuracy(), accuracy(&pred, &truth));
    }

    #[test]
    fn confusion_matrix_missing_class_recall_is_none() {
        let cm = ConfusionMatrix::new(&[0, 2], &[0, 0]);
        assert_eq!(cm.recall(1), None);
        assert_eq!(cm.recall(2), None);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn ari_rejects_mismatched_lengths() {
        adjusted_rand_index(&[0, 1], &[0]);
    }
}
