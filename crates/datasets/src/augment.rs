//! Per-instance augmentation: the intra-class variations of Fig. 2
//! (value-axis scaling, time-axis warping/shift) plus sensor noise.

use crate::standard_normal;
use crate::template::Template;
use rand::{Rng, RngExt};

/// Augmentation parameters applied independently to every generated
/// instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Augment {
    /// Additive white-noise standard deviation (relative to the template's
    /// ≈ unit amplitude).
    pub noise_std: f64,
    /// Amplitude scale is drawn from `U[1 − j, 1 + j]` (Fig. 2a scaling).
    pub scale_jitter: f64,
    /// Strength of the smooth monotone time warp: interior warp knots move
    /// by up to this fraction of their spacing (Fig. 2b "not warping").
    pub warp_strength: f64,
    /// Global time shift drawn from `U[−s, s]` (fraction of the series).
    pub shift_frac: f64,
}

impl Default for Augment {
    fn default() -> Self {
        Self {
            noise_std: 0.15,
            scale_jitter: 0.2,
            warp_strength: 0.4,
            shift_frac: 0.03,
        }
    }
}

impl Augment {
    /// No-op augmentation (exact template samples).
    pub fn none() -> Self {
        Self {
            noise_std: 0.0,
            scale_jitter: 0.0,
            warp_strength: 0.0,
            shift_frac: 0.0,
        }
    }

    /// Draws one augmented instance of `template` with `len` samples.
    ///
    /// The result is *not* z-normalized; generators normalize after
    /// augmentation so the noise contributes to the variance the way real
    /// sensor noise would.
    pub fn apply<R: Rng + ?Sized>(&self, template: &Template, len: usize, rng: &mut R) -> Vec<f64> {
        self.apply_curve(|x| template.eval(x), len, rng)
    }

    /// [`Augment::apply`] over an arbitrary curve on `[0, 1]` instead of a
    /// [`Template`] — the drift generators use this to augment *blends* of
    /// two templates (slow morphs) that are not themselves templates.
    ///
    /// Draw order is identical to [`Augment::apply`], so for the same RNG
    /// state `apply(t, ..)` and `apply_curve(|x| t.eval(x), ..)` produce
    /// the same instance.
    pub fn apply_curve<R: Rng + ?Sized, F: Fn(f64) -> f64>(
        &self,
        curve: F,
        len: usize,
        rng: &mut R,
    ) -> Vec<f64> {
        let scale = 1.0 + self.scale_jitter * (2.0 * rng.random::<f64>() - 1.0);
        let shift = self.shift_frac * (2.0 * rng.random::<f64>() - 1.0);
        let warp = MonotoneWarp::random(self.warp_strength, rng);
        (0..len)
            .map(|i| {
                let x = i as f64 / (len - 1).max(1) as f64;
                let warped = (warp.eval(x) + shift).clamp(0.0, 1.0);
                scale * curve(warped) + self.noise_std * standard_normal(rng)
            })
            .collect()
    }
}

/// A random monotone, endpoint-preserving warp of `[0, 1]`, built from
/// jittered interior knots with piecewise-linear interpolation. Monotonicity
/// keeps the event *order* intact — instances differ in pacing, not in
/// structure, exactly like the paper's motion/speech examples.
struct MonotoneWarp {
    knots: Vec<(f64, f64)>,
}

impl MonotoneWarp {
    const INTERIOR: usize = 3;

    fn random<R: Rng + ?Sized>(strength: f64, rng: &mut R) -> Self {
        let mut knots = Vec::with_capacity(Self::INTERIOR + 2);
        knots.push((0.0, 0.0));
        let spacing = 1.0 / (Self::INTERIOR + 1) as f64;
        let mut prev = 0.0f64;
        for i in 1..=Self::INTERIOR {
            let base = i as f64 * spacing;
            // Jitter the *target* position, clamped to stay monotone with a
            // small margin.
            let jitter = strength * spacing * (2.0 * rng.random::<f64>() - 1.0);
            let y = (base + jitter).clamp(prev + 0.05 * spacing, 1.0 - 0.05 * spacing);
            knots.push((base, y));
            prev = y;
        }
        knots.push((1.0, 1.0));
        Self { knots }
    }

    fn eval(&self, x: f64) -> f64 {
        let idx = self
            .knots
            .windows(2)
            .position(|w| x <= w[1].0)
            .unwrap_or(self.knots.len() - 2);
        let (x0, y0) = self.knots[idx];
        let (x1, y1) = self.knots[idx + 1];
        let t = if x1 > x0 { (x - x0) / (x1 - x0) } else { 0.0 };
        y0 + t * (y1 - y0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn template() -> Template {
        Template::new(vec![(0.0, 0.0), (0.5, 1.0), (1.0, -1.0)])
    }

    #[test]
    fn none_reproduces_template_exactly() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let out = Augment::none().apply(&template(), 64, &mut rng);
        let want = template().sample(64);
        for (a, b) in out.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn noise_perturbs_but_preserves_scale() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let aug = Augment {
            noise_std: 0.1,
            ..Augment::none()
        };
        let out = aug.apply(&template(), 256, &mut rng);
        let want = template().sample(256);
        let mse: f64 = out
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / 256.0;
        assert!(mse > 0.001 && mse < 0.05, "mse={mse}");
    }

    #[test]
    fn warp_is_monotone() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        for _ in 0..50 {
            let w = MonotoneWarp::random(0.8, &mut rng);
            let mut prev = -1.0;
            for i in 0..=100 {
                let y = w.eval(i as f64 / 100.0);
                assert!(y >= prev - 1e-12, "warp not monotone");
                assert!((0.0..=1.0).contains(&y));
                prev = y;
            }
            assert_eq!(w.eval(0.0), 0.0);
            assert_eq!(w.eval(1.0), 1.0);
        }
    }

    #[test]
    fn apply_curve_matches_apply_for_template_curves() {
        let aug = Augment::default();
        let t = template();
        let a = aug.apply(&t, 120, &mut ChaCha12Rng::seed_from_u64(11));
        let b = aug.apply_curve(|x| t.eval(x), 120, &mut ChaCha12Rng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    fn different_draws_differ() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let aug = Augment::default();
        let a = aug.apply(&template(), 100, &mut rng);
        let b = aug.apply(&template(), 100, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let aug = Augment::default();
        let a = aug.apply(&template(), 100, &mut ChaCha12Rng::seed_from_u64(7));
        let b = aug.apply(&template(), 100, &mut ChaCha12Rng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
