//! Synthetic datasets standing in for the paper's evaluation data (§V-A).
//!
//! The paper evaluates on UCR *Symbols* (six classes of hand-motion
//! trajectories, length 398) and *Trace* (three classes of nuclear-station
//! monitoring signals, length 275), each inflated to 40 000 instances with
//! generative models, plus synthetic trigonometric waves. UCR data and the
//! authors' GANs are not redistributable, so this crate generates
//! class-structured synthetic equivalents:
//!
//! * every class has a smooth *template* (its essential shape);
//! * each instance is the template under amplitude scaling, smooth random
//!   time-warping, time shift, and additive Gaussian noise — exactly the
//!   intra-class variations (Fig. 2) the mechanisms must be robust to;
//! * everything is z-score normalized, as the paper requires.
//!
//! Real UCR files can still be used through
//! [`privshape_timeseries::read_ucr_file`].
//!
//! For the continual extraction mode, the [`drift_epoch`] generators
//! produce per-epoch arrival batches whose class mixture changes over
//! time (regime switches, seasonal fade-in/out, slow morphs), each with
//! its epoch's ground-truth shapes attached.
//!
//! # Example
//!
//! ```
//! use privshape_datasets::{SymbolsLikeConfig, generate_symbols_like};
//!
//! let data = generate_symbols_like(&SymbolsLikeConfig {
//!     n_per_class: 5,
//!     ..Default::default()
//! });
//! assert_eq!(data.len(), 30); // 6 classes × 5
//! assert_eq!(data.series()[0].len(), 398);
//! ```

mod augment;
mod drift;
mod generator;
mod template;
mod trig;

pub use augment::Augment;
pub use drift::{drift_epoch, epoch_mixture, DriftConfig, DriftEpoch, DriftKind};
pub use generator::{
    generate_leak_series, generate_symbols_like, generate_trace_like, generate_trace_like_counts,
    leak_template, symbols_template, trace_template, zipf_counts, SymbolsLikeConfig,
    TraceLikeConfig, SYMBOLS_CLASSES, SYMBOLS_LEN, TRACE_CLASSES, TRACE_LEN,
};
pub use template::{Burst, Template};
pub use trig::{generate_trig, TrigConfig, TrigMode, WaveKind};

/// Draws one standard normal sample via Box–Muller (the `rand_distr` crate
/// is avoided to keep the dependency set to the vetted list).
pub(crate) fn standard_normal<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    use rand::RngExt;
    loop {
        let u1: f64 = rng.random::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    #[test]
    fn standard_normal_has_right_moments() {
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(0);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| super::standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }
}
