//! Class templates: the essential shape each synthetic class is built from.

/// A transient oscillation added on top of the spline backbone — used by the
/// Trace-like classes, whose real-world counterparts contain short
//  instrument transients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Center position in `[0, 1]`.
    pub center: f64,
    /// Gaussian envelope width (fraction of the series).
    pub width: f64,
    /// Oscillation frequency in cycles over the whole series.
    pub freq: f64,
    /// Peak amplitude.
    pub amp: f64,
}

impl Burst {
    fn eval(&self, x: f64) -> f64 {
        let d = (x - self.center) / self.width;
        let envelope = (-d * d).exp();
        self.amp * envelope * (2.0 * std::f64::consts::PI * self.freq * (x - self.center)).sin()
    }
}

/// A smooth template over `[0, 1]`: cosine-interpolated control points plus
/// optional oscillatory bursts.
///
/// Cosine interpolation keeps the curve C¹-smooth between knots without the
/// overshoot cubic splines can produce — important because overshoot would
/// change which SAX region a segment lands in.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// `(position, value)` knots; positions strictly increasing, covering 0
    /// and 1.
    control: Vec<(f64, f64)>,
    bursts: Vec<Burst>,
}

impl Template {
    /// Builds a template from control points.
    ///
    /// # Panics
    ///
    /// Panics unless there are ≥ 2 knots with strictly increasing positions
    /// starting at 0.0 and ending at 1.0 — templates are compiled-in class
    /// definitions, so violations are programming errors.
    pub fn new(control: Vec<(f64, f64)>) -> Self {
        assert!(control.len() >= 2, "template needs at least two knots");
        assert_eq!(control[0].0, 0.0, "first knot must sit at position 0");
        assert_eq!(
            control[control.len() - 1].0,
            1.0,
            "last knot must sit at position 1"
        );
        assert!(
            control.windows(2).all(|w| w[0].0 < w[1].0),
            "knot positions must be strictly increasing"
        );
        Self {
            control,
            bursts: Vec::new(),
        }
    }

    /// Adds an oscillatory burst.
    pub fn with_burst(mut self, burst: Burst) -> Self {
        self.bursts.push(burst);
        self
    }

    /// Evaluates the template at `x ∈ [0, 1]` (clamped outside).
    pub fn eval(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        // Find the knot interval containing x.
        let idx = self
            .control
            .windows(2)
            .position(|w| x <= w[1].0)
            .unwrap_or(self.control.len() - 2);
        let (x0, y0) = self.control[idx];
        let (x1, y1) = self.control[idx + 1];
        let t = if x1 > x0 { (x - x0) / (x1 - x0) } else { 0.0 };
        let smooth = (1.0 - (std::f64::consts::PI * t).cos()) / 2.0;
        let base = y0 + smooth * (y1 - y0);
        base + self.bursts.iter().map(|b| b.eval(x)).sum::<f64>()
    }

    /// Samples the template at `len` evenly spaced positions.
    pub fn sample(&self, len: usize) -> Vec<f64> {
        assert!(len >= 2, "need at least two samples");
        (0..len)
            .map(|i| self.eval(i as f64 / (len - 1) as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_passes_through_knots() {
        let t = Template::new(vec![(0.0, -1.0), (0.5, 2.0), (1.0, 0.0)]);
        assert!((t.eval(0.0) + 1.0).abs() < 1e-12);
        assert!((t.eval(0.5) - 2.0).abs() < 1e-12);
        assert!((t.eval(1.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn interpolation_is_monotone_between_two_knots() {
        let t = Template::new(vec![(0.0, 0.0), (1.0, 1.0)]);
        let s = t.sample(50);
        for w in s.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Cosine easing stays within the knot value range (no overshoot).
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn out_of_range_positions_clamp() {
        let t = Template::new(vec![(0.0, 3.0), (1.0, 7.0)]);
        assert_eq!(t.eval(-1.0), 3.0);
        assert_eq!(t.eval(2.0), 7.0);
    }

    #[test]
    fn burst_is_localized() {
        let t = Template::new(vec![(0.0, 0.0), (1.0, 0.0)]).with_burst(Burst {
            center: 0.5,
            width: 0.05,
            freq: 10.0,
            amp: 1.0,
        });
        // Far from the center the burst has decayed.
        assert!(t.eval(0.1).abs() < 1e-6);
        assert!(t.eval(0.9).abs() < 1e-6);
        // Near the center there is signal.
        let peak = t.sample(500).iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(peak > 0.5, "peak={peak}");
    }

    #[test]
    fn sample_spans_whole_domain() {
        let t = Template::new(vec![(0.0, 1.0), (1.0, -1.0)]);
        let s = t.sample(11);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0], 1.0);
        assert_eq!(s[10], -1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_knots() {
        Template::new(vec![(0.0, 0.0), (0.7, 1.0), (0.5, 2.0), (1.0, 0.0)]);
    }
}
