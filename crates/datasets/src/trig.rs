//! The Trigonometric Wave dataset (§V-I): sine and cosine values within one
//! period, used to probe sensitivity to series length.
//!
//! Two regimes from the paper:
//!
//! * [`TrigMode::FullPeriod`] — the whole period is resampled at the target
//!   length, so the *shape stays constant* as the length varies (Fig. 16);
//! * [`TrigMode::Prefix`] — the first `length` points of a 1000-point
//!   period, so the *shape changes* with the length (Fig. 17).

use crate::standard_normal;
use privshape_timeseries::{Dataset, TimeSeries};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Which wave a class represents. Class labels: sine = 0, cosine = 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaveKind {
    /// `sin(2πx)` over one period.
    Sine,
    /// `cos(2πx)` over one period.
    Cosine,
}

impl WaveKind {
    fn eval(self, x: f64) -> f64 {
        let angle = 2.0 * std::f64::consts::PI * x;
        match self {
            WaveKind::Sine => angle.sin(),
            WaveKind::Cosine => angle.cos(),
        }
    }

    /// The class label used in generated datasets.
    pub fn label(self) -> usize {
        match self {
            WaveKind::Sine => 0,
            WaveKind::Cosine => 1,
        }
    }
}

/// How series length relates to the underlying period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrigMode {
    /// Sample the full period at `length` points (same shape, Fig. 16).
    FullPeriod,
    /// Take the first `length` of `period_len` points (different shapes,
    /// Fig. 17).
    Prefix {
        /// Length of the full-period reference series (the paper uses 1000).
        period_len: usize,
    },
}

/// Configuration of the trigonometric generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TrigConfig {
    /// Instances per class (sine and cosine each).
    pub n_per_class: usize,
    /// Series length.
    pub length: usize,
    /// Length regime.
    pub mode: TrigMode,
    /// Additive white-noise std before z-normalization.
    pub noise_std: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for TrigConfig {
    fn default() -> Self {
        Self {
            n_per_class: 1000,
            length: 200,
            mode: TrigMode::FullPeriod,
            noise_std: 0.05,
            seed: 2023,
        }
    }
}

/// Generates the two-class sine/cosine dataset, class-interleaved and
/// z-score normalized (as the paper requires for PatternLDP).
pub fn generate_trig(config: &TrigConfig) -> Dataset {
    let mut rng = ChaCha12Rng::seed_from_u64(config.seed);
    let mut series = Vec::with_capacity(2 * config.n_per_class);
    let mut labels = Vec::with_capacity(2 * config.n_per_class);
    for _ in 0..config.n_per_class {
        for kind in [WaveKind::Sine, WaveKind::Cosine] {
            let values: Vec<f64> = (0..config.length)
                .map(|i| {
                    let x = match config.mode {
                        TrigMode::FullPeriod => i as f64 / (config.length - 1).max(1) as f64,
                        TrigMode::Prefix { period_len } => {
                            i as f64 / (period_len - 1).max(1) as f64
                        }
                    };
                    kind.eval(x) + config.noise_std * standard_normal(&mut rng)
                })
                .collect();
            series.push(
                TimeSeries::new(values)
                    .expect("finite samples")
                    .z_normalized(),
            );
            labels.push(kind.label());
        }
    }
    Dataset::labeled(series, labels).expect("lengths match")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_balanced_classes() {
        let d = generate_trig(&TrigConfig {
            n_per_class: 5,
            ..Default::default()
        });
        assert_eq!(d.len(), 10);
        assert_eq!(d.class_indices(0).len(), 5);
        assert_eq!(d.class_indices(1).len(), 5);
    }

    #[test]
    fn full_period_preserves_shape_across_lengths() {
        // A noiseless sine at any length starts and ends near 0 (z-scored),
        // peaks in the first half and troughs in the second.
        for len in [200usize, 600, 1000] {
            let d = generate_trig(&TrigConfig {
                n_per_class: 1,
                length: len,
                noise_std: 0.0,
                ..Default::default()
            });
            let sine = &d.series()[0];
            let vals = sine.values();
            let argmax = vals
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            let argmin = vals
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert!(argmax < len / 2, "len={len} argmax={argmax}");
            assert!(argmin > len / 2, "len={len} argmin={argmin}");
        }
    }

    #[test]
    fn prefix_mode_changes_shape_with_length() {
        // A 250-point prefix of a 1000-point sine covers only the first
        // quarter period: it is monotone increasing (before z-scoring, and
        // z-scoring preserves monotonicity).
        let d = generate_trig(&TrigConfig {
            n_per_class: 1,
            length: 250,
            mode: TrigMode::Prefix { period_len: 1000 },
            noise_std: 0.0,
            ..Default::default()
        });
        let sine = d.series()[0].values();
        let rising = sine.windows(2).filter(|w| w[1] >= w[0]).count();
        assert!(rising as f64 > 0.95 * (sine.len() - 1) as f64);
    }

    #[test]
    fn output_is_z_normalized() {
        let d = generate_trig(&TrigConfig {
            n_per_class: 2,
            ..Default::default()
        });
        for s in d.series() {
            assert!(s.mean().abs() < 1e-9);
            assert!((s.std() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_generation() {
        let cfg = TrigConfig {
            n_per_class: 2,
            seed: 5,
            ..Default::default()
        };
        assert_eq!(
            generate_trig(&cfg).series()[3],
            generate_trig(&cfg).series()[3]
        );
    }

    #[test]
    fn sine_and_cosine_differ() {
        let d = generate_trig(&TrigConfig {
            n_per_class: 1,
            noise_std: 0.0,
            ..Default::default()
        });
        assert_ne!(d.series()[0], d.series()[1]);
    }
}
