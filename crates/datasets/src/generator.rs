//! The Symbols-like and Trace-like dataset generators (substitutes for the
//! paper's GAN-augmented UCR data; see DESIGN.md §3).

use crate::augment::Augment;
use crate::template::{Burst, Template};
use privshape_timeseries::{Dataset, TimeSeries};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Number of classes in the Symbols-like dataset (as in UCR Symbols).
pub const SYMBOLS_CLASSES: usize = 6;
/// Series length of the Symbols-like dataset (as in UCR Symbols).
pub const SYMBOLS_LEN: usize = 398;
/// Number of classes used from Trace (the paper selects three).
pub const TRACE_CLASSES: usize = 3;
/// Series length of the Trace-like dataset (as in UCR Trace).
pub const TRACE_LEN: usize = 275;

/// The essential shape of Symbols-like class `class ∈ [0, 6)`.
///
/// Each template is a distinct smooth pen-trajectory-style curve: single
/// bumps, dips, S-curves and double bumps — shapes whose compressed SAX
/// encodings are pairwise well separated.
///
/// # Panics
///
/// Panics if `class ≥ SYMBOLS_CLASSES`.
pub fn symbols_template(class: usize) -> Template {
    match class {
        // Single centered positive bump.
        0 => Template::new(vec![(0.0, -1.0), (0.5, 1.6), (1.0, -1.0)]),
        // Single centered dip.
        1 => Template::new(vec![(0.0, 1.0), (0.5, -1.6), (1.0, 1.0)]),
        // Rise–fall S: early peak, late trough.
        2 => Template::new(vec![(0.0, 0.0), (0.25, 1.5), (0.75, -1.5), (1.0, 0.0)]),
        // Fall–rise S: early trough, late peak.
        3 => Template::new(vec![(0.0, 0.0), (0.25, -1.5), (0.75, 1.5), (1.0, 0.0)]),
        // Double positive bump (camel back).
        4 => Template::new(vec![
            (0.0, -1.2),
            (0.22, 1.3),
            (0.5, -0.6),
            (0.78, 1.3),
            (1.0, -1.2),
        ]),
        // Ramp up to a held plateau, then release.
        5 => Template::new(vec![(0.0, -1.4), (0.3, 0.9), (0.7, 1.1), (1.0, -1.4)]),
        _ => panic!("Symbols-like has {SYMBOLS_CLASSES} classes, got {class}"),
    }
}

/// The essential shape of Trace-like class `class ∈ [0, 3)`.
///
/// Modeled on the character of the real Trace classes (nuclear-plant
/// instrumentation): level shifts and transient oscillations.
///
/// # Panics
///
/// Panics if `class ≥ TRACE_CLASSES`.
pub fn trace_template(class: usize) -> Template {
    match class {
        // Low plateau, sharp step up at 60%, high plateau.
        0 => Template::new(vec![(0.0, -1.0), (0.55, -1.0), (0.65, 1.2), (1.0, 1.2)]),
        // High start, gradual decay with a transient burst near the middle.
        1 => Template::new(vec![(0.0, 1.2), (0.4, 0.8), (1.0, -1.2)]).with_burst(Burst {
            center: 0.45,
            width: 0.06,
            freq: 12.0,
            amp: 0.9,
        }),
        // Flat baseline with a late dip-and-recover excursion.
        2 => Template::new(vec![
            (0.0, 0.4),
            (0.6, 0.4),
            (0.75, -1.8),
            (0.9, 0.4),
            (1.0, 0.4),
        ]),
        _ => panic!("Trace-like has {TRACE_CLASSES} classes, got {class}"),
    }
}

/// Configuration of the Symbols-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolsLikeConfig {
    /// Instances generated per class.
    pub n_per_class: usize,
    /// Series length (UCR Symbols uses 398).
    pub length: usize,
    /// Per-instance augmentation.
    pub augment: Augment,
    /// Master seed; generation is fully deterministic given the config.
    pub seed: u64,
}

impl Default for SymbolsLikeConfig {
    fn default() -> Self {
        Self {
            n_per_class: 1000,
            length: SYMBOLS_LEN,
            augment: Augment::default(),
            seed: 2023,
        }
    }
}

/// Configuration of the Trace-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLikeConfig {
    /// Instances generated per class.
    pub n_per_class: usize,
    /// Series length (UCR Trace uses 275).
    pub length: usize,
    /// Per-instance augmentation.
    pub augment: Augment,
    /// Master seed.
    pub seed: u64,
}

impl Default for TraceLikeConfig {
    fn default() -> Self {
        Self {
            n_per_class: 1000,
            length: TRACE_LEN,
            augment: Augment::default(),
            seed: 2023,
        }
    }
}

/// Generates the Symbols-like dataset: `6 × n_per_class` labeled, z-scored
/// series, class-interleaved so any prefix is class-balanced.
pub fn generate_symbols_like(config: &SymbolsLikeConfig) -> Dataset {
    generate(
        SYMBOLS_CLASSES,
        config.n_per_class,
        config.length,
        &config.augment,
        config.seed,
        symbols_template,
    )
}

/// Generates the Trace-like dataset: `3 × n_per_class` labeled, z-scored
/// series, class-interleaved.
pub fn generate_trace_like(config: &TraceLikeConfig) -> Dataset {
    generate(
        TRACE_CLASSES,
        config.n_per_class,
        config.length,
        &config.augment,
        config.seed,
        trace_template,
    )
}

fn generate(
    classes: usize,
    n_per_class: usize,
    length: usize,
    augment: &Augment,
    seed: u64,
    template_of: fn(usize) -> Template,
) -> Dataset {
    let templates: Vec<Template> = (0..classes).map(template_of).collect();
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut series = Vec::with_capacity(classes * n_per_class);
    let mut labels = Vec::with_capacity(classes * n_per_class);
    for _ in 0..n_per_class {
        for (class, template) in templates.iter().enumerate() {
            let values = augment.apply(template, length, &mut rng);
            let ts = TimeSeries::new(values)
                .expect("generator emits finite samples")
                .z_normalized();
            series.push(ts);
            labels.push(class);
        }
    }
    Dataset::labeled(series, labels).expect("lengths match by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use privshape_timeseries::{compressive_sax, SaxParams};

    #[test]
    fn symbols_generator_shape_and_labels() {
        let cfg = SymbolsLikeConfig {
            n_per_class: 3,
            ..Default::default()
        };
        let d = generate_symbols_like(&cfg);
        assert_eq!(d.len(), 18);
        assert_eq!(d.n_classes(), Some(6));
        assert!(d.series().iter().all(|s| s.len() == SYMBOLS_LEN));
        // Interleaved: first six instances cover all classes.
        let first_six: Vec<usize> = d.labels().unwrap()[..6].to_vec();
        assert_eq!(first_six, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn trace_generator_shape_and_labels() {
        let cfg = TraceLikeConfig {
            n_per_class: 4,
            ..Default::default()
        };
        let d = generate_trace_like(&cfg);
        assert_eq!(d.len(), 12);
        assert_eq!(d.n_classes(), Some(3));
        assert!(d.series().iter().all(|s| s.len() == TRACE_LEN));
    }

    #[test]
    fn output_is_z_normalized() {
        let cfg = SymbolsLikeConfig {
            n_per_class: 2,
            ..Default::default()
        };
        let d = generate_symbols_like(&cfg);
        for s in d.series() {
            assert!(s.mean().abs() < 1e-9);
            assert!((s.std() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TraceLikeConfig {
            n_per_class: 2,
            seed: 99,
            ..Default::default()
        };
        let a = generate_trace_like(&cfg);
        let b = generate_trace_like(&cfg);
        assert_eq!(a.series()[5], b.series()[5]);
        let c = generate_trace_like(&TraceLikeConfig { seed: 100, ..cfg });
        assert_ne!(a.series()[5], c.series()[5]);
    }

    #[test]
    fn class_templates_have_distinct_compressed_shapes() {
        // The whole premise of the synthetic substitution: intra-class
        // instances share an essential shape, classes differ. Check the
        // noiseless templates map to pairwise distinct Compressive SAX
        // strings under the paper's Symbols parameters (w=25, t=6 over 398).
        let params = SaxParams::new(25, 6).unwrap();
        let mut shapes = Vec::new();
        for class in 0..SYMBOLS_CLASSES {
            let raw = symbols_template(class).sample(SYMBOLS_LEN);
            let z = TimeSeries::new(raw).unwrap().z_normalized();
            shapes.push(compressive_sax(z.values(), &params).to_string());
        }
        for i in 0..shapes.len() {
            for j in (i + 1)..shapes.len() {
                assert_ne!(shapes[i], shapes[j], "classes {i} and {j} collide");
            }
        }
    }

    #[test]
    fn trace_templates_distinct_under_paper_params() {
        let params = SaxParams::new(10, 4).unwrap();
        let mut shapes = Vec::new();
        for class in 0..TRACE_CLASSES {
            let raw = trace_template(class).sample(TRACE_LEN);
            let z = TimeSeries::new(raw).unwrap().z_normalized();
            shapes.push(compressive_sax(z.values(), &params).to_string());
        }
        for i in 0..shapes.len() {
            for j in (i + 1)..shapes.len() {
                assert_ne!(shapes[i], shapes[j], "classes {i} and {j} collide");
            }
        }
    }

    #[test]
    #[should_panic(expected = "classes")]
    fn template_bounds_checked() {
        symbols_template(6);
    }

    use privshape_timeseries::TimeSeries;
}
