//! The Symbols-like and Trace-like dataset generators (substitutes for the
//! paper's GAN-augmented UCR data; see DESIGN.md §3).

use crate::augment::Augment;
use crate::template::{Burst, Template};
use privshape_timeseries::{Dataset, TimeSeries};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Number of classes in the Symbols-like dataset (as in UCR Symbols).
pub const SYMBOLS_CLASSES: usize = 6;
/// Series length of the Symbols-like dataset (as in UCR Symbols).
pub const SYMBOLS_LEN: usize = 398;
/// Number of classes used from Trace (the paper selects three).
pub const TRACE_CLASSES: usize = 3;
/// Series length of the Trace-like dataset (as in UCR Trace).
pub const TRACE_LEN: usize = 275;

/// The essential shape of Symbols-like class `class ∈ [0, 6)`.
///
/// Each template is a distinct smooth pen-trajectory-style curve: single
/// bumps, dips, S-curves and double bumps — shapes whose compressed SAX
/// encodings are pairwise well separated.
///
/// # Panics
///
/// Panics if `class ≥ SYMBOLS_CLASSES`.
pub fn symbols_template(class: usize) -> Template {
    match class {
        // Single centered positive bump.
        0 => Template::new(vec![(0.0, -1.0), (0.5, 1.6), (1.0, -1.0)]),
        // Single centered dip.
        1 => Template::new(vec![(0.0, 1.0), (0.5, -1.6), (1.0, 1.0)]),
        // Rise–fall S: early peak, late trough.
        2 => Template::new(vec![(0.0, 0.0), (0.25, 1.5), (0.75, -1.5), (1.0, 0.0)]),
        // Fall–rise S: early trough, late peak.
        3 => Template::new(vec![(0.0, 0.0), (0.25, -1.5), (0.75, 1.5), (1.0, 0.0)]),
        // Double positive bump (camel back).
        4 => Template::new(vec![
            (0.0, -1.2),
            (0.22, 1.3),
            (0.5, -0.6),
            (0.78, 1.3),
            (1.0, -1.2),
        ]),
        // Ramp up to a held plateau, then release.
        5 => Template::new(vec![(0.0, -1.4), (0.3, 0.9), (0.7, 1.1), (1.0, -1.4)]),
        _ => panic!("Symbols-like has {SYMBOLS_CLASSES} classes, got {class}"),
    }
}

/// The essential shape of Trace-like class `class ∈ [0, 3)`.
///
/// Modeled on the character of the real Trace classes (nuclear-plant
/// instrumentation): level shifts and transient oscillations.
///
/// # Panics
///
/// Panics if `class ≥ TRACE_CLASSES`.
pub fn trace_template(class: usize) -> Template {
    match class {
        // Low plateau, sharp step up at 60%, high plateau.
        0 => Template::new(vec![(0.0, -1.0), (0.55, -1.0), (0.65, 1.2), (1.0, 1.2)]),
        // High start, gradual decay with a transient burst near the middle.
        1 => Template::new(vec![(0.0, 1.2), (0.4, 0.8), (1.0, -1.2)]).with_burst(Burst {
            center: 0.45,
            width: 0.06,
            freq: 12.0,
            amp: 0.9,
        }),
        // Flat baseline with a late dip-and-recover excursion.
        2 => Template::new(vec![
            (0.0, 0.4),
            (0.6, 0.4),
            (0.75, -1.8),
            (0.9, 0.4),
            (1.0, 0.4),
        ]),
        _ => panic!("Trace-like has {TRACE_CLASSES} classes, got {class}"),
    }
}

/// Configuration of the Symbols-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolsLikeConfig {
    /// Instances generated per class.
    pub n_per_class: usize,
    /// Series length (UCR Symbols uses 398).
    pub length: usize,
    /// Per-instance augmentation.
    pub augment: Augment,
    /// Master seed; generation is fully deterministic given the config.
    pub seed: u64,
}

impl Default for SymbolsLikeConfig {
    fn default() -> Self {
        Self {
            n_per_class: 1000,
            length: SYMBOLS_LEN,
            augment: Augment::default(),
            seed: 2023,
        }
    }
}

/// Configuration of the Trace-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLikeConfig {
    /// Instances generated per class.
    pub n_per_class: usize,
    /// Series length (UCR Trace uses 275).
    pub length: usize,
    /// Per-instance augmentation.
    pub augment: Augment,
    /// Master seed.
    pub seed: u64,
}

impl Default for TraceLikeConfig {
    fn default() -> Self {
        Self {
            n_per_class: 1000,
            length: TRACE_LEN,
            augment: Augment::default(),
            seed: 2023,
        }
    }
}

/// Generates the Symbols-like dataset: `6 × n_per_class` labeled, z-scored
/// series, class-interleaved so any prefix is class-balanced.
pub fn generate_symbols_like(config: &SymbolsLikeConfig) -> Dataset {
    generate(
        SYMBOLS_CLASSES,
        config.n_per_class,
        config.length,
        &config.augment,
        config.seed,
        symbols_template,
    )
}

/// Generates the Trace-like dataset: `3 × n_per_class` labeled, z-scored
/// series, class-interleaved.
pub fn generate_trace_like(config: &TraceLikeConfig) -> Dataset {
    generate(
        TRACE_CLASSES,
        config.n_per_class,
        config.length,
        &config.augment,
        config.seed,
        trace_template,
    )
}

/// Per-class instance counts following a Zipf law: class `i` gets a share
/// proportional to `1 / (i + 1)^exponent`, rounded so the counts sum to
/// exactly `total` (the remainder goes to the heaviest classes first).
/// Every class gets at least one instance when `total ≥ classes`.
///
/// This is the skew axis of the quality stress matrix: real populations
/// are rarely class-balanced, and heavy-tailed group sizes starve the
/// minority classes' report counts.
pub fn zipf_counts(total: usize, classes: usize, exponent: f64) -> Vec<usize> {
    assert!(classes > 0, "zipf_counts needs at least one class");
    let weights: Vec<f64> = (0..classes)
        .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
        .collect();
    let sum: f64 = weights.iter().sum();
    let floor_min = usize::from(total >= classes);
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| (((total as f64) * w / sum).floor() as usize).max(floor_min))
        .collect();
    // Trim or top up (heaviest classes first) until the counts sum exactly.
    let mut assigned: usize = counts.iter().sum();
    let mut i = 0;
    while assigned > total {
        let j = classes - 1 - (i % classes);
        if counts[j] > floor_min {
            counts[j] -= 1;
            assigned -= 1;
        }
        i += 1;
    }
    for j in (0..classes).cycle() {
        if assigned == total {
            break;
        }
        counts[j] += 1;
        assigned += 1;
    }
    counts
}

/// Generates a Trace-like dataset with an explicit per-class instance
/// count (`counts.len()` must be [`TRACE_CLASSES`]); `config.n_per_class`
/// is ignored. Classes are interleaved while instances remain, so prefixes
/// stay as balanced as the counts allow.
///
/// Each class draws from its own seeded stream, so a class's instances are
/// identical across calls that only change *other* classes' counts — the
/// property the leak-probe scenarios lean on.
///
/// # Panics
///
/// Panics if `counts.len() != TRACE_CLASSES`.
pub fn generate_trace_like_counts(config: &TraceLikeConfig, counts: &[usize]) -> Dataset {
    assert_eq!(
        counts.len(),
        TRACE_CLASSES,
        "need one count per Trace-like class"
    );
    let mut rngs: Vec<ChaCha12Rng> = (0..TRACE_CLASSES)
        .map(|class| ChaCha12Rng::seed_from_u64(class_stream_seed(config.seed, class)))
        .collect();
    let templates: Vec<Template> = (0..TRACE_CLASSES).map(trace_template).collect();
    let total: usize = counts.iter().sum();
    let mut emitted = [0usize; TRACE_CLASSES];
    let mut series = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    while series.len() < total {
        for class in 0..TRACE_CLASSES {
            if emitted[class] >= counts[class] {
                continue;
            }
            let values = config
                .augment
                .apply(&templates[class], config.length, &mut rngs[class]);
            let ts = TimeSeries::new(values)
                .expect("generator emits finite samples")
                .z_normalized();
            series.push(ts);
            labels.push(class);
            emitted[class] += 1;
        }
    }
    Dataset::labeled(series, labels).expect("lengths match by construction")
}

/// The sensitive "leak probe" shape: a fast high/low zigzag no Trace-like
/// class resembles. Quality scenarios plant it in a handful of users and
/// assert the extractor does *not* surface it — LDP noise at small ε must
/// drown signals held by few users (the PMP-style memorization probe).
pub fn leak_template() -> Template {
    Template::new(vec![
        (0.0, 1.6),
        (0.18, -1.6),
        (0.38, 1.6),
        (0.58, -1.6),
        (0.78, 1.6),
        (1.0, -1.6),
    ])
}

/// Augmented, z-normalized instances of [`leak_template`], on a seed
/// stream disjoint from every Trace-like class stream.
pub fn generate_leak_series(
    count: usize,
    length: usize,
    augment: &Augment,
    seed: u64,
) -> Vec<TimeSeries> {
    let template = leak_template();
    let mut rng = ChaCha12Rng::seed_from_u64(class_stream_seed(seed, usize::MAX / 2));
    (0..count)
        .map(|_| {
            TimeSeries::new(augment.apply(&template, length, &mut rng))
                .expect("generator emits finite samples")
                .z_normalized()
        })
        .collect()
}

/// SplitMix64-style decorrelation of the master seed into per-class
/// streams.
fn class_stream_seed(seed: u64, class: usize) -> u64 {
    let mut z = seed ^ (class as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn generate(
    classes: usize,
    n_per_class: usize,
    length: usize,
    augment: &Augment,
    seed: u64,
    template_of: fn(usize) -> Template,
) -> Dataset {
    let templates: Vec<Template> = (0..classes).map(template_of).collect();
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut series = Vec::with_capacity(classes * n_per_class);
    let mut labels = Vec::with_capacity(classes * n_per_class);
    for _ in 0..n_per_class {
        for (class, template) in templates.iter().enumerate() {
            let values = augment.apply(template, length, &mut rng);
            let ts = TimeSeries::new(values)
                .expect("generator emits finite samples")
                .z_normalized();
            series.push(ts);
            labels.push(class);
        }
    }
    Dataset::labeled(series, labels).expect("lengths match by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use privshape_timeseries::{compressive_sax, SaxParams};

    #[test]
    fn symbols_generator_shape_and_labels() {
        let cfg = SymbolsLikeConfig {
            n_per_class: 3,
            ..Default::default()
        };
        let d = generate_symbols_like(&cfg);
        assert_eq!(d.len(), 18);
        assert_eq!(d.n_classes(), Some(6));
        assert!(d.series().iter().all(|s| s.len() == SYMBOLS_LEN));
        // Interleaved: first six instances cover all classes.
        let first_six: Vec<usize> = d.labels().unwrap()[..6].to_vec();
        assert_eq!(first_six, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn trace_generator_shape_and_labels() {
        let cfg = TraceLikeConfig {
            n_per_class: 4,
            ..Default::default()
        };
        let d = generate_trace_like(&cfg);
        assert_eq!(d.len(), 12);
        assert_eq!(d.n_classes(), Some(3));
        assert!(d.series().iter().all(|s| s.len() == TRACE_LEN));
    }

    #[test]
    fn output_is_z_normalized() {
        let cfg = SymbolsLikeConfig {
            n_per_class: 2,
            ..Default::default()
        };
        let d = generate_symbols_like(&cfg);
        for s in d.series() {
            assert!(s.mean().abs() < 1e-9);
            assert!((s.std() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TraceLikeConfig {
            n_per_class: 2,
            seed: 99,
            ..Default::default()
        };
        let a = generate_trace_like(&cfg);
        let b = generate_trace_like(&cfg);
        assert_eq!(a.series()[5], b.series()[5]);
        let c = generate_trace_like(&TraceLikeConfig { seed: 100, ..cfg });
        assert_ne!(a.series()[5], c.series()[5]);
    }

    #[test]
    fn class_templates_have_distinct_compressed_shapes() {
        // The whole premise of the synthetic substitution: intra-class
        // instances share an essential shape, classes differ. Check the
        // noiseless templates map to pairwise distinct Compressive SAX
        // strings under the paper's Symbols parameters (w=25, t=6 over 398).
        let params = SaxParams::new(25, 6).unwrap();
        let mut shapes = Vec::new();
        for class in 0..SYMBOLS_CLASSES {
            let raw = symbols_template(class).sample(SYMBOLS_LEN);
            let z = TimeSeries::new(raw).unwrap().z_normalized();
            shapes.push(compressive_sax(z.values(), &params).to_string());
        }
        for i in 0..shapes.len() {
            for j in (i + 1)..shapes.len() {
                assert_ne!(shapes[i], shapes[j], "classes {i} and {j} collide");
            }
        }
    }

    #[test]
    fn trace_templates_distinct_under_paper_params() {
        let params = SaxParams::new(10, 4).unwrap();
        let mut shapes = Vec::new();
        for class in 0..TRACE_CLASSES {
            let raw = trace_template(class).sample(TRACE_LEN);
            let z = TimeSeries::new(raw).unwrap().z_normalized();
            shapes.push(compressive_sax(z.values(), &params).to_string());
        }
        for i in 0..shapes.len() {
            for j in (i + 1)..shapes.len() {
                assert_ne!(shapes[i], shapes[j], "classes {i} and {j} collide");
            }
        }
    }

    #[test]
    #[should_panic(expected = "classes")]
    fn template_bounds_checked() {
        symbols_template(6);
    }

    #[test]
    fn zipf_counts_sum_and_skew() {
        let counts = zipf_counts(720, 3, 1.0);
        assert_eq!(counts.iter().sum::<usize>(), 720);
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
        // Exponent 0 is uniform.
        assert_eq!(zipf_counts(90, 3, 0.0), vec![30, 30, 30]);
        // Strong skew still gives every class at least one instance.
        let steep = zipf_counts(10, 5, 4.0);
        assert_eq!(steep.iter().sum::<usize>(), 10);
        assert!(steep.iter().all(|&c| c >= 1), "{steep:?}");
    }

    #[test]
    fn counts_generator_matches_declared_counts() {
        let cfg = TraceLikeConfig {
            seed: 7,
            ..Default::default()
        };
        let counts = [12, 5, 2];
        let d = generate_trace_like_counts(&cfg, &counts);
        assert_eq!(d.len(), 19);
        let labels = d.labels().unwrap();
        for (class, &expected) in counts.iter().enumerate() {
            assert_eq!(labels.iter().filter(|&&l| l == class).count(), expected);
        }
        assert!(d.series().iter().all(|s| s.len() == TRACE_LEN));
        // Deterministic, and a class's instances are independent of the
        // other classes' counts.
        let d2 = generate_trace_like_counts(&cfg, &counts);
        assert_eq!(d.series()[0], d2.series()[0]);
        let d3 = generate_trace_like_counts(&cfg, &[12, 1, 1]);
        let first_class0 = d.series()[0].clone();
        let first_class0_again = d3.series()[0].clone();
        assert_eq!(first_class0, first_class0_again);
    }

    #[test]
    fn leak_shape_is_distinct_from_every_trace_class() {
        let params = SaxParams::new(10, 4).unwrap();
        let leak = {
            let raw = leak_template().sample(TRACE_LEN);
            let z = TimeSeries::new(raw).unwrap().z_normalized();
            compressive_sax(z.values(), &params).to_string()
        };
        for class in 0..TRACE_CLASSES {
            let raw = trace_template(class).sample(TRACE_LEN);
            let z = TimeSeries::new(raw).unwrap().z_normalized();
            let shape = compressive_sax(z.values(), &params).to_string();
            assert_ne!(leak, shape, "leak shape collides with class {class}");
        }
        let series = generate_leak_series(4, TRACE_LEN, &Augment::default(), 3);
        assert_eq!(series.len(), 4);
        assert_eq!(
            series,
            generate_leak_series(4, TRACE_LEN, &Augment::default(), 3)
        );
    }

    use privshape_timeseries::TimeSeries;
}
