//! Drifting populations for the continual extraction mode: per-epoch
//! batches of arriving series whose *class mixture changes over time*,
//! with the ground-truth shapes active in each epoch emitted alongside.
//!
//! Three drift scenarios cover the failure modes a sliding-window
//! extractor must track (motivated by the period-conscious LDP
//! reconstruction literature in PAPERS.md):
//!
//! * [`DriftKind::RegimeChange`] — an abrupt switch: before
//!   `switch_epoch` arrivals draw from the `old` class mix, from
//!   `switch_epoch` on from the `new` mix. Classes present in both mixes
//!   persist across the switch.
//! * [`DriftKind::Seasonal`] — one class fades in and out on a fixed
//!   period (share `max_share · (1 − cos(2π·e/period))/2`), on top of an
//!   always-present base mix.
//! * [`DriftKind::Morph`] — one class's essential shape *slowly becomes
//!   another's*: every arrival draws from the blend
//!   `(1 − t)·from + t·to` with `t = min(1, epoch/epochs)`.
//!
//! Generation is deterministic: epoch `e` of a config is a pure function
//! of `(seed, e)`, and each `(epoch, class)` pair draws from its own
//! decorrelated RNG stream — regenerating an epoch never perturbs any
//! other.

use crate::augment::Augment;
use crate::template::Template;
use privshape_timeseries::TimeSeries;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// How the class mixture evolves across epochs. Class indices refer to
/// the palette in [`DriftConfig::palette`].
#[derive(Debug, Clone, PartialEq)]
pub enum DriftKind {
    /// Abrupt regime switch: arrivals draw uniformly from `old` before
    /// `switch_epoch` and uniformly from `new` at and after it.
    RegimeChange {
        /// Palette classes active before the switch.
        old: Vec<usize>,
        /// Palette classes active from `switch_epoch` on.
        new: Vec<usize>,
        /// First epoch that draws from the new mix.
        switch_epoch: usize,
    },
    /// A seasonal class fades in and out over `base` (always present,
    /// uniform shares of the remainder).
    Seasonal {
        /// Always-active palette classes.
        base: Vec<usize>,
        /// The class whose share oscillates.
        seasonal: usize,
        /// Oscillation period in epochs.
        period: usize,
        /// Peak share of the seasonal class, in `(0, 1)`.
        max_share: f64,
    },
    /// Class `from` morphs into class `to` over `epochs` epochs; every
    /// arrival draws from the blended curve.
    Morph {
        /// Starting shape.
        from: usize,
        /// Final shape.
        to: usize,
        /// Epochs the morph takes (`t = min(1, epoch/epochs)`).
        epochs: usize,
    },
}

/// Configuration of a drifting arrival stream.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// The shape palette drift indexes into.
    pub palette: Vec<Template>,
    /// How the mixture evolves.
    pub kind: DriftKind,
    /// Arrivals per epoch.
    pub n_per_epoch: usize,
    /// Series length.
    pub length: usize,
    /// Per-instance augmentation.
    pub augment: Augment,
    /// Master seed; epochs are pure functions of `(seed, epoch)`.
    pub seed: u64,
}

/// One epoch's arrivals plus its ground truth.
#[derive(Debug, Clone)]
pub struct DriftEpoch {
    /// The arriving series, z-normalized and class-interleaved (any
    /// prefix is as mixture-balanced as the shares allow).
    pub series: Vec<TimeSeries>,
    /// Palette class of each series (for a morph, the `from` class while
    /// `t < 0.5`, the `to` class after).
    pub labels: Vec<usize>,
    /// Ground truth: `(class, share, raw curve)` for every class active
    /// this epoch (share > 0), shares summing to 1. The curve is the
    /// *noiseless* class curve of this epoch — for a morph it is the
    /// blend, so the truth drifts with the population.
    pub truth: Vec<(usize, f64, Vec<f64>)>,
}

impl DriftEpoch {
    /// Classes whose population share this epoch is at least `min_share`
    /// — the set a window-less extractor should surface.
    pub fn active_classes(&self, min_share: f64) -> Vec<usize> {
        self.truth
            .iter()
            .filter(|(_, share, _)| *share >= min_share)
            .map(|(class, _, _)| *class)
            .collect()
    }
}

/// The class mixture of one epoch: `(class, share, curve)` with shares
/// summing to 1. Exposed for tests and for window-level ground truth
/// (a driver can mix several epochs' mixtures by window share).
pub fn epoch_mixture(config: &DriftConfig, epoch: usize) -> Vec<(usize, f64, Vec<f64>)> {
    let sample = |class: usize| config.palette[class].sample(config.length);
    match &config.kind {
        DriftKind::RegimeChange {
            old,
            new,
            switch_epoch,
        } => {
            let active = if epoch < *switch_epoch { old } else { new };
            assert!(!active.is_empty(), "regime mixture must name >= 1 class");
            let share = 1.0 / active.len() as f64;
            active.iter().map(|&c| (c, share, sample(c))).collect()
        }
        DriftKind::Seasonal {
            base,
            seasonal,
            period,
            max_share,
        } => {
            assert!(!base.is_empty(), "seasonal drift needs a base mixture");
            assert!(*period >= 2, "seasonal period must span >= 2 epochs");
            assert!(
                (0.0..1.0).contains(max_share),
                "max_share must lie in [0, 1)"
            );
            let phase = 2.0 * std::f64::consts::PI * epoch as f64 / *period as f64;
            let s = max_share * (1.0 - phase.cos()) / 2.0;
            let base_share = (1.0 - s) / base.len() as f64;
            let mut mix: Vec<(usize, f64, Vec<f64>)> =
                base.iter().map(|&c| (c, base_share, sample(c))).collect();
            if s > 0.0 {
                mix.push((*seasonal, s, sample(*seasonal)));
            }
            mix
        }
        DriftKind::Morph { from, to, epochs } => {
            assert!(*epochs >= 1, "a morph must take >= 1 epoch");
            let t = (epoch as f64 / *epochs as f64).min(1.0);
            let a = &config.palette[*from];
            let b = &config.palette[*to];
            let label = if t < 0.5 { *from } else { *to };
            let curve = (0..config.length)
                .map(|i| {
                    let x = i as f64 / (config.length - 1) as f64;
                    (1.0 - t) * a.eval(x) + t * b.eval(x)
                })
                .collect();
            vec![(label, 1.0, curve)]
        }
    }
}

/// Generates epoch `epoch` of the drift stream: deterministic in
/// `(config, epoch)`, class-interleaved, z-normalized.
///
/// Instance counts follow the epoch mixture by largest remainder, so
/// they sum to exactly [`DriftConfig::n_per_epoch`].
///
/// # Panics
///
/// Panics when the drift kind references a class outside the palette or
/// its mixture parameters are degenerate (empty mixes, zero period).
pub fn drift_epoch(config: &DriftConfig, epoch: usize) -> DriftEpoch {
    let mixture = epoch_mixture(config, epoch);
    for (class, _, _) in &mixture {
        assert!(
            *class < config.palette.len(),
            "drift class {class} outside palette of {}",
            config.palette.len()
        );
    }
    let counts = share_counts(config.n_per_epoch, &mixture);

    // One decorrelated stream per (epoch, class): a class's instances
    // do not depend on the other classes' shares, mirroring
    // `generate_trace_like_counts`.
    let mut rngs: Vec<ChaCha12Rng> = mixture
        .iter()
        .map(|(class, _, _)| {
            ChaCha12Rng::seed_from_u64(drift_stream_seed(config.seed, epoch, *class))
        })
        .collect();

    let total: usize = counts.iter().sum();
    let mut emitted = vec![0usize; mixture.len()];
    let mut series = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    while series.len() < total {
        for (slot, (class, _, curve)) in mixture.iter().enumerate() {
            if emitted[slot] >= counts[slot] {
                continue;
            }
            let values = config.augment.apply_curve(
                |x| eval_curve(curve, x),
                config.length,
                &mut rngs[slot],
            );
            series.push(
                TimeSeries::new(values)
                    .expect("drift curves are finite")
                    .z_normalized(),
            );
            labels.push(*class);
            emitted[slot] += 1;
        }
    }
    DriftEpoch {
        series,
        labels,
        truth: mixture,
    }
}

/// Largest-remainder apportionment of `total` instances to the mixture
/// shares (every positive-share class gets at least one instance when
/// `total` allows).
fn share_counts(total: usize, mixture: &[(usize, f64, Vec<f64>)]) -> Vec<usize> {
    let mut counts: Vec<usize> = mixture
        .iter()
        .map(|(_, share, _)| (total as f64 * share).floor() as usize)
        .collect();
    if total >= mixture.len() {
        for c in counts.iter_mut() {
            *c = (*c).max(1);
        }
    }
    let mut assigned: usize = counts.iter().sum();
    // Trim overshoot from the largest slots, top up the largest shares.
    while assigned > total {
        let max = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .expect("mixture is non-empty");
        counts[max] -= 1;
        assigned -= 1;
    }
    let mut order: Vec<usize> = (0..mixture.len()).collect();
    order.sort_by(|&a, &b| {
        mixture[b]
            .1
            .partial_cmp(&mixture[a].1)
            .expect("finite shares")
    });
    for slot in order.into_iter().cycle() {
        if assigned == total {
            break;
        }
        counts[slot] += 1;
        assigned += 1;
    }
    counts
}

/// Piecewise-linear evaluation of a sampled curve at `x ∈ [0, 1]` —
/// needed because augmentation warps positions between the samples.
fn eval_curve(curve: &[f64], x: f64) -> f64 {
    let pos = x.clamp(0.0, 1.0) * (curve.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = (lo + 1).min(curve.len() - 1);
    let t = pos - lo as f64;
    curve[lo] * (1.0 - t) + curve[hi] * t
}

/// SplitMix64-style decorrelation of `(seed, epoch, class)` into one
/// stream seed per epoch-class pair.
fn drift_stream_seed(seed: u64, epoch: usize, class: usize) -> u64 {
    let mut z = seed
        ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (class as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{trace_template, TRACE_CLASSES, TRACE_LEN};

    fn palette() -> Vec<Template> {
        (0..TRACE_CLASSES).map(trace_template).collect()
    }

    fn regime_config() -> DriftConfig {
        DriftConfig {
            palette: palette(),
            kind: DriftKind::RegimeChange {
                old: vec![0, 1],
                new: vec![0, 2],
                switch_epoch: 4,
            },
            n_per_epoch: 60,
            length: TRACE_LEN,
            augment: Augment::default(),
            seed: 11,
        }
    }

    #[test]
    fn regime_change_switches_the_mixture() {
        let cfg = regime_config();
        let before = drift_epoch(&cfg, 3);
        let after = drift_epoch(&cfg, 4);
        assert_eq!(before.active_classes(0.1), vec![0, 1]);
        assert_eq!(after.active_classes(0.1), vec![0, 2]);
        assert_eq!(before.series.len(), 60);
        assert_eq!(before.labels.iter().filter(|&&l| l == 0).count(), 30);
        assert_eq!(before.labels.iter().filter(|&&l| l == 1).count(), 30);
        assert!(after.labels.iter().all(|&l| l != 1));
    }

    #[test]
    fn epochs_are_deterministic_and_distinct() {
        let cfg = regime_config();
        let a = drift_epoch(&cfg, 2);
        let b = drift_epoch(&cfg, 2);
        assert_eq!(a.series, b.series);
        assert_eq!(a.labels, b.labels);
        let c = drift_epoch(&cfg, 3);
        assert_ne!(a.series[0], c.series[0], "epoch streams must differ");
    }

    #[test]
    fn output_is_z_normalized_and_interleaved() {
        let e = drift_epoch(&regime_config(), 0);
        for s in &e.series {
            assert!(s.mean().abs() < 1e-9);
            assert!((s.std() - 1.0).abs() < 1e-9);
            assert_eq!(s.len(), TRACE_LEN);
        }
        // Interleaved: the first two arrivals cover both active classes.
        assert_eq!(&e.labels[..2], &[0, 1]);
    }

    #[test]
    fn seasonal_share_oscillates() {
        let cfg = DriftConfig {
            palette: palette(),
            kind: DriftKind::Seasonal {
                base: vec![0, 1],
                seasonal: 2,
                period: 8,
                max_share: 0.5,
            },
            n_per_epoch: 80,
            length: TRACE_LEN,
            augment: Augment::default(),
            seed: 5,
        };
        // Trough at epoch 0: the seasonal class is absent.
        let trough = drift_epoch(&cfg, 0);
        assert_eq!(trough.active_classes(0.05), vec![0, 1]);
        // Peak at half period: the seasonal class holds max_share.
        let peak = drift_epoch(&cfg, 4);
        let share = peak
            .truth
            .iter()
            .find(|(c, _, _)| *c == 2)
            .map(|(_, s, _)| *s)
            .unwrap();
        assert!((share - 0.5).abs() < 1e-12, "share={share}");
        let count2 = peak.labels.iter().filter(|&&l| l == 2).count();
        assert_eq!(count2, 40);
        // Shares always sum to 1.
        for epoch in 0..16 {
            let sum: f64 = epoch_mixture(&cfg, epoch).iter().map(|(_, s, _)| s).sum();
            assert!((sum - 1.0).abs() < 1e-9, "epoch {epoch}: {sum}");
        }
    }

    #[test]
    fn morph_blends_from_into_to() {
        let cfg = DriftConfig {
            palette: palette(),
            kind: DriftKind::Morph {
                from: 0,
                to: 2,
                epochs: 10,
            },
            n_per_epoch: 10,
            length: TRACE_LEN,
            augment: Augment::none(),
            seed: 1,
        };
        let start = drift_epoch(&cfg, 0);
        let end = drift_epoch(&cfg, 10);
        let t0 = trace_template(0).sample(TRACE_LEN);
        let t2 = trace_template(2).sample(TRACE_LEN);
        let close_to = |a: &[f64], b: &[f64]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max)
                < 1e-9
        };
        assert!(close_to(&start.truth[0].2, &t0));
        assert!(close_to(&end.truth[0].2, &t2));
        assert_eq!(start.labels[0], 0);
        assert_eq!(end.labels[0], 2);
        // Halfway the curve is the midpoint blend.
        let mid = drift_epoch(&cfg, 5);
        let want: Vec<f64> = t0.iter().zip(&t2).map(|(a, b)| 0.5 * (a + b)).collect();
        assert!(close_to(&mid.truth[0].2, &want));
    }

    #[test]
    fn share_counts_sum_exactly() {
        let mix = vec![
            (0usize, 0.5, vec![0.0; 2]),
            (1usize, 0.33, vec![0.0; 2]),
            (2usize, 0.17, vec![0.0; 2]),
        ];
        for total in [1usize, 7, 60, 5000] {
            let counts = share_counts(total, &mix);
            assert_eq!(counts.iter().sum::<usize>(), total, "total={total}");
        }
        let counts = share_counts(6000, &mix);
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
    }
}
