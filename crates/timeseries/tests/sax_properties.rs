//! Property tests for the SAX pipeline: the invariants the mechanisms rely
//! on, checked for arbitrary series and parameters.

use privshape_timeseries::{
    compress, compressive_sax, gaussian_breakpoints, num_segments, paa, sax, symbolize, SaxParams,
    Symbol, SymbolSeq, TimeSeries,
};
use proptest::prelude::*;

fn series_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 1..300)
}

proptest! {
    #[test]
    fn paa_of_constant_series_is_constant(c in -10.0f64..10.0, len in 1usize..100, w in 1usize..20) {
        let out = paa(&vec![c; len], w);
        prop_assert_eq!(out.len(), num_segments(len, w));
        for v in out {
            prop_assert!((v - c).abs() < 1e-12);
        }
    }

    #[test]
    fn symbolize_is_monotone_in_value(t in 2usize..15, a in -3.0f64..3.0, b in -3.0f64..3.0) {
        let bp = gaussian_breakpoints(t).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(symbolize(lo, &bp).index() <= symbolize(hi, &bp).index());
    }

    #[test]
    fn symbolize_partitions_probability_evenly(t in 2usize..10) {
        // Sampling a fine grid of standard-normal quantiles must hit each
        // symbol with equal frequency (the whole point of the breakpoints).
        let bp = gaussian_breakpoints(t).unwrap();
        let samples = 10_000;
        let mut counts = vec![0usize; t];
        for i in 1..samples {
            let p = i as f64 / samples as f64;
            let x = privshape_timeseries::inverse_normal_cdf(p);
            counts[symbolize(x, &bp).index()] += 1;
        }
        let want = (samples as f64 - 1.0) / t as f64;
        for (s, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64 - want).abs() < want * 0.05 + 2.0,
                "symbol {s}: {c} vs {want}"
            );
        }
    }

    #[test]
    fn sax_commutes_with_value_shift_after_znorm(
        values in series_strategy(),
        shift in -50.0f64..50.0,
        scale in 0.1f64..10.0,
    ) {
        // z-normalization makes SAX invariant to affine value changes with
        // positive scale — the "scaling" robustness of Fig. 2a.
        let params = SaxParams::new(4, 5).unwrap();
        let a = TimeSeries::new(values.clone()).unwrap().z_normalized();
        let shifted: Vec<f64> = values.iter().map(|v| v * scale + shift).collect();
        let b = TimeSeries::new(shifted).unwrap().z_normalized();
        prop_assert_eq!(sax(a.values(), &params), sax(b.values(), &params));
    }

    #[test]
    fn compress_preserves_symbol_set_and_order(raw in prop::collection::vec(0u8..6, 0..50)) {
        let seq: SymbolSeq = raw.iter().copied().map(Symbol::from_index).collect();
        let compressed = compress(&seq);
        // The compressed sequence is a subsequence of the original.
        let mut it = seq.symbols().iter();
        for s in compressed.symbols() {
            prop_assert!(it.any(|x| x == s), "not a subsequence");
        }
        // And it loses no *transitions*: every adjacent pair of the
        // compressed sequence occurs as an adjacent pair of the original
        // (where the run of `a` ends and `b` begins).
        for (a, b) in compressed.bigrams() {
            let found = seq.bigrams().any(|(x, y)| x == a && y == b);
            prop_assert!(found, "transition {a}{b} lost");
        }
    }

    #[test]
    fn compressive_sax_invariant_to_time_stretch(
        values in prop::collection::vec(-10.0f64..10.0, 4..40),
        repeat in 2usize..5,
    ) {
        // Repeating every sample `repeat` times (a slower gesture) must not
        // change the essential shape when the segment length scales along —
        // the core Compressive SAX claim (Fig. 4).
        let params_a = SaxParams::new(2, 4).unwrap();
        let params_b = SaxParams::new(2 * repeat, 4).unwrap();
        let a = TimeSeries::new(values.clone()).unwrap().z_normalized();
        let stretched: Vec<f64> =
            values.iter().flat_map(|&v| std::iter::repeat_n(v, repeat)).collect();
        let b = TimeSeries::new(stretched).unwrap().z_normalized();
        prop_assert_eq!(
            compressive_sax(a.values(), &params_a),
            compressive_sax(b.values(), &params_b)
        );
    }

    #[test]
    fn ucr_round_trip_for_arbitrary_labeled_data(
        rows in prop::collection::vec(
            (0usize..9, prop::collection::vec(-1e6f64..1e6, 1..20)),
            1..20,
        ),
    ) {
        use privshape_timeseries::{parse_ucr, write_ucr, Dataset};
        let series: Vec<TimeSeries> =
            rows.iter().map(|(_, v)| TimeSeries::new(v.clone()).unwrap()).collect();
        let labels: Vec<usize> = rows.iter().map(|(l, _)| *l).collect();
        let data = Dataset::labeled(series, labels).unwrap();
        let mut buf = Vec::new();
        write_ucr(&data, &mut buf).unwrap();
        let back = parse_ucr(std::str::from_utf8(&buf).unwrap()).unwrap();
        prop_assert_eq!(back.len(), data.len());
        prop_assert_eq!(back.labels().unwrap(), data.labels().unwrap());
        for (a, b) in back.series().iter().zip(data.series()) {
            for (x, y) in a.values().iter().zip(b.values()) {
                prop_assert!((x - y).abs() <= 1e-9 * y.abs().max(1.0));
            }
        }
    }
}
