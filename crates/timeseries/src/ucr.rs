//! Reading and writing the UCR time-series archive text format.
//!
//! The paper evaluates on the UCR *Symbols* and *Trace* datasets. Real UCR
//! files are one series per line: an integer class label followed by the
//! samples, separated by commas or whitespace. This loader lets real UCR data
//! be dropped into the experiment harness in place of the bundled synthetic
//! generators.

use crate::dataset::Dataset;
use crate::error::{Result, TsError};
use crate::series::TimeSeries;
use std::io::{BufReader, Read, Write};
use std::path::Path;

/// Parses UCR-format text (label, then samples, per line). Blank lines are
/// skipped. Accepts comma, tab, or space separators.
pub fn parse_ucr(text: &str) -> Result<Dataset> {
    let mut series = Vec::new();
    let mut labels = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|f| !f.is_empty());
        let label_field = fields.next().ok_or_else(|| TsError::Parse {
            line: lineno + 1,
            message: "missing label".into(),
        })?;
        // UCR labels are integers but are sometimes written as "1.0".
        let label = label_field.parse::<f64>().map_err(|e| TsError::Parse {
            line: lineno + 1,
            message: format!("label: {e}"),
        })? as i64;
        if label < 0 {
            return Err(TsError::Parse {
                line: lineno + 1,
                message: format!("negative label {label}"),
            });
        }
        let values = fields
            .map(|f| {
                f.parse::<f64>().map_err(|e| TsError::Parse {
                    line: lineno + 1,
                    message: format!("value {f:?}: {e}"),
                })
            })
            .collect::<Result<Vec<f64>>>()?;
        series.push(TimeSeries::new(values).map_err(|_| TsError::Parse {
            line: lineno + 1,
            message: "series must be non-empty and finite".into(),
        })?);
        labels.push(label as usize);
    }
    Dataset::labeled(series, labels)
}

/// Reads a UCR-format file from disk.
pub fn read_ucr_file(path: &Path) -> Result<Dataset> {
    let mut reader = BufReader::new(std::fs::File::open(path)?);
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    parse_ucr(&text)
}

/// Serializes a labeled dataset in UCR format (comma-separated).
pub fn write_ucr(dataset: &Dataset, mut out: impl Write) -> Result<()> {
    let labels = dataset.labels().ok_or(TsError::LabelMismatch {
        series: dataset.len(),
        labels: 0,
    })?;
    for (s, &label) in dataset.series().iter().zip(labels) {
        write!(out, "{label}")?;
        for v in s.values() {
            write!(out, ",{v}")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Writes a labeled dataset to a UCR-format file.
pub fn write_ucr_file(dataset: &Dataset, path: &Path) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_ucr(dataset, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comma_and_whitespace_forms() {
        let d = parse_ucr("1,0.5,1.5\n2\t-1.0\t0.0\n\n0 3.0 4.0\n").unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.labels().unwrap(), &[1, 2, 0]);
        assert_eq!(d.series()[1].values(), &[-1.0, 0.0]);
    }

    #[test]
    fn parses_float_labels() {
        let d = parse_ucr("1.0,0.5\n").unwrap();
        assert_eq!(d.labels().unwrap(), &[1]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_ucr("x,1.0\n").is_err());
        assert!(parse_ucr("1,notafloat\n").is_err());
        assert!(parse_ucr("1\n").is_err()); // label with no samples
        assert!(parse_ucr("-3,1.0\n").is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_ucr("1,1.0\n2,bad\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn write_then_parse_round_trips() {
        let d = parse_ucr("1,0.5,1.5\n0,-2.0,3.25\n").unwrap();
        let mut buf = Vec::new();
        write_ucr(&d, &mut buf).unwrap();
        let back = parse_ucr(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(back.labels(), d.labels());
        assert_eq!(back.series()[1].values(), d.series()[1].values());
    }

    #[test]
    fn file_round_trip() {
        let d = parse_ucr("1,0.5\n2,1.5\n").unwrap();
        let path = std::env::temp_dir().join("privshape_ucr_roundtrip_test.csv");
        write_ucr_file(&d, &path).unwrap();
        let back = read_ucr_file(&path).unwrap();
        assert_eq!(back.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unlabeled_dataset_cannot_be_written() {
        let d = Dataset::unlabeled(vec![TimeSeries::new(vec![1.0]).unwrap()]);
        assert!(write_ucr(&d, Vec::new()).is_err());
    }
}
