//! The SAX transform (§II-A) and Compressive SAX (§III-B).

use crate::breakpoints::gaussian_breakpoints;
use crate::compress::compress;
use crate::error::{Result, TsError};
use crate::paa::paa;
use crate::symbol::{Symbol, SymbolSeq};

/// Validated SAX parameters: segment length `w` and alphabet size `t`,
/// with the Gaussian breakpoint table precomputed.
#[derive(Debug, Clone, PartialEq)]
pub struct SaxParams {
    segment_len: usize,
    alphabet: usize,
    breakpoints: Vec<f64>,
}

impl SaxParams {
    /// Creates parameters, validating `w ≥ 1` and `t ∈ [2, 26]`.
    pub fn new(segment_len: usize, alphabet: usize) -> Result<Self> {
        if segment_len == 0 {
            return Err(TsError::InvalidSegmentLength(segment_len));
        }
        let breakpoints = gaussian_breakpoints(alphabet)?;
        Ok(Self {
            segment_len,
            alphabet,
            breakpoints,
        })
    }

    /// Segment length `w`.
    pub fn segment_len(&self) -> usize {
        self.segment_len
    }

    /// Alphabet size `t`.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// The `t - 1` breakpoints splitting `N(0,1)` into equiprobable regions.
    pub fn breakpoints(&self) -> &[f64] {
        &self.breakpoints
    }
}

/// Maps one (z-normalized) value to its SAX symbol by binary search over the
/// breakpoint table: region `i` covers `[β_{i-1}, β_i)`.
pub fn symbolize(value: f64, breakpoints: &[f64]) -> Symbol {
    let idx = breakpoints.partition_point(|&b| b <= value);
    Symbol::from_index(idx as u8)
}

/// The SAX transform of a **z-normalized** series: PAA with segment length
/// `w`, then symbol assignment against the Gaussian breakpoints.
///
/// The input is not re-normalized here so that callers controlling the
/// normalization policy (e.g. the ablation in §V-J that skips SAX) can reuse
/// the symbolization machinery.
pub fn sax(values: &[f64], params: &SaxParams) -> SymbolSeq {
    paa(values, params.segment_len)
        .into_iter()
        .map(|v| symbolize(v, &params.breakpoints))
        .collect()
}

/// Compressive SAX: SAX followed by merging runs of repeated symbols
/// (the paper's `"aaaccccccbbbbaaa" → "acba"` reduction).
pub fn compressive_sax(values: &[f64], params: &SaxParams) -> SymbolSeq {
    compress(&sax(values, params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validate_inputs() {
        assert!(SaxParams::new(0, 3).is_err());
        assert!(SaxParams::new(8, 1).is_err());
        assert!(SaxParams::new(8, 27).is_err());
        let p = SaxParams::new(8, 3).unwrap();
        assert_eq!(p.segment_len(), 8);
        assert_eq!(p.alphabet(), 3);
        assert_eq!(p.breakpoints().len(), 2);
    }

    #[test]
    fn symbolize_respects_half_open_regions() {
        let bp = [-0.43, 0.43];
        assert_eq!(symbolize(-1.0, &bp).as_char(), 'a');
        // Boundary values belong to the upper region: [β, …).
        assert_eq!(symbolize(-0.43, &bp).as_char(), 'b');
        assert_eq!(symbolize(0.0, &bp).as_char(), 'b');
        assert_eq!(symbolize(0.43, &bp).as_char(), 'c');
        assert_eq!(symbolize(5.0, &bp).as_char(), 'c');
    }

    #[test]
    fn sax_matches_paper_fig3_shape() {
        // Reconstruct the qualitative series of Fig. 3: low for 3 segments,
        // high for 6, middle for 4, low for 3 — with w = 8, t = 3 it must
        // produce "aaaccccccbbbbaaa", compressing to "acba".
        let mut v = Vec::new();
        for seg in 0..16 {
            let level = match seg {
                0..=2 => -1.2,
                3..=8 => 1.3,
                9..=12 => 0.0,
                _ => -1.2,
            };
            for i in 0..8 {
                v.push(level + 0.02 * (i as f64 % 2.0));
            }
        }
        let series = crate::TimeSeries::new(v).unwrap().z_normalized();
        let p = SaxParams::new(8, 3).unwrap();
        let seq = sax(series.values(), &p);
        assert_eq!(seq.to_string(), "aaaccccccbbbbaaa");
        assert_eq!(compressive_sax(series.values(), &p).to_string(), "acba");
    }

    #[test]
    fn sax_output_length_is_segment_count() {
        let p = SaxParams::new(3, 4).unwrap();
        let v = vec![0.0; 10];
        assert_eq!(sax(&v, &p).len(), 4); // ⌈10/3⌉
    }

    #[test]
    fn symbols_stay_within_alphabet() {
        let p = SaxParams::new(2, 5).unwrap();
        let v: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.37).sin() * 3.0).collect();
        let seq = sax(&v, &p);
        assert!(seq.max_index().unwrap() < 5);
    }
}
