use crate::error::{Result, TsError};

/// An owned, finite, non-empty sequence of `f64` samples aligned with their
/// generation order (the paper's `R = {r_1, …, r_m}`).
///
/// Construction validates that every sample is finite so that downstream
/// numerical code (PAA averaging, z-scores, DTW) never has to re-check.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series, rejecting empty input and non-finite samples.
    pub fn new(values: Vec<f64>) -> Result<Self> {
        if values.is_empty() {
            return Err(TsError::EmptySeries);
        }
        for (index, &value) in values.iter().enumerate() {
            if !value.is_finite() {
                return Err(TsError::NonFiniteSample { index, value });
            }
        }
        Ok(Self { values })
    }

    /// Number of samples `m`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// A `TimeSeries` is never empty, but the method keeps clippy and
    /// call-sites that pattern-match on emptiness honest.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrow the raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consume the series and return its samples.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population standard deviation (the convention used by z-score
    /// normalization in the SAX literature).
    pub fn std(&self) -> f64 {
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|v| {
                let d = v - mean;
                d * d
            })
            .sum::<f64>()
            / self.values.len() as f64;
        var.sqrt()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Returns a z-score-normalized copy: `(x - μ) / σ`.
    ///
    /// A (near-)constant series has no shape information; it normalizes to
    /// all zeros rather than dividing by a vanishing σ.
    pub fn z_normalized(&self) -> TimeSeries {
        let mean = self.mean();
        let std = self.std();
        let values = if std < 1e-12 {
            vec![0.0; self.values.len()]
        } else {
            self.values.iter().map(|v| (v - mean) / std).collect()
        };
        TimeSeries { values }
    }

    /// Truncates to the first `len` samples or pads by repeating the final
    /// sample, returning a series of exactly `len` samples.
    pub fn resized(&self, len: usize) -> Result<TimeSeries> {
        if len == 0 {
            return Err(TsError::EmptySeries);
        }
        let mut values = self.values.clone();
        if values.len() > len {
            values.truncate(len);
        } else {
            let last = *values.last().expect("non-empty by construction");
            values.resize(len, last);
        }
        Ok(TimeSeries { values })
    }
}

impl AsRef<[f64]> for TimeSeries {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

impl TryFrom<Vec<f64>> for TimeSeries {
    type Error = TsError;

    fn try_from(values: Vec<f64>) -> Result<Self> {
        TimeSeries::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(TimeSeries::new(vec![]), Err(TsError::EmptySeries)));
    }

    #[test]
    fn rejects_nan_and_inf() {
        assert!(matches!(
            TimeSeries::new(vec![1.0, f64::NAN]),
            Err(TsError::NonFiniteSample { index: 1, .. })
        ));
        assert!(TimeSeries::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn summary_statistics() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.len(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        let expected_std = (1.25f64).sqrt();
        assert!((s.std() - expected_std).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn z_normalization_has_zero_mean_unit_std() {
        let s = ts(&[3.0, 7.0, 1.0, 9.0, 5.0]).z_normalized();
        assert!(s.mean().abs() < 1e-12);
        assert!((s.std() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_normalization_of_constant_series_is_zero() {
        let s = ts(&[4.2, 4.2, 4.2]).z_normalized();
        assert_eq!(s.values(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn resized_truncates_and_pads() {
        let s = ts(&[1.0, 2.0, 3.0]);
        assert_eq!(s.resized(2).unwrap().values(), &[1.0, 2.0]);
        assert_eq!(s.resized(5).unwrap().values(), &[1.0, 2.0, 3.0, 3.0, 3.0]);
        assert!(s.resized(0).is_err());
    }

    #[test]
    fn try_from_round_trips() {
        let s = TimeSeries::try_from(vec![1.0, -1.0]).unwrap();
        assert_eq!(s.into_values(), vec![1.0, -1.0]);
    }
}
