//! Packed, columnar storage for a batch of candidate shapes.
//!
//! The round hot path broadcasts the same candidate list to every addressed
//! user, and every user scores every candidate. Holding the candidates as a
//! `Vec<SymbolSeq>` costs one heap allocation per shape and clones the whole
//! list each time a broadcast is copied. A [`CandidateTable`] packs all
//! shapes into one flat symbol buffer plus a row-offset vector, so
//!
//! * the whole table is **two** allocations regardless of row count,
//! * rows come back as borrowed `&[Symbol]` slices (no per-row rebuild),
//! * wrapping the table in `Arc` makes broadcasting it to millions of
//!   simulated clients a pointer copy.

use crate::error::Result;
use crate::symbol::{Symbol, SymbolSeq};
use std::fmt;

/// A packed table of symbol sequences: one flat symbol buffer (a `u8`
/// buffer in memory — [`Symbol`] is a `u8` newtype) plus row offsets.
///
/// Row order is insertion order and is significant: protocol rounds
/// identify candidates by their row index.
///
/// # Example
///
/// ```
/// use privshape_timeseries::{CandidateTable, SymbolSeq};
///
/// let seqs = [SymbolSeq::parse("acb").unwrap(), SymbolSeq::parse("ca").unwrap()];
/// let table = CandidateTable::from_seqs(&seqs);
/// assert_eq!(table.len(), 2);
/// assert_eq!(table.row(0), seqs[0].symbols());
/// assert_eq!(table.total_symbols(), 5);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct CandidateTable {
    /// All rows' symbols, concatenated.
    symbols: Vec<Symbol>,
    /// `offsets[i]` is the *end* of row `i` (its start is the previous
    /// row's end, or 0), so `offsets.len()` is the row count and the
    /// representation is canonical — equal contents always compare equal
    /// under the derived `PartialEq`/`Hash`, including empty tables.
    offsets: Vec<usize>,
    /// `lcp[i]` is the longest common prefix (in symbols) of rows `i − 1`
    /// and `i`; `lcp[0]` is 0. Maintained by [`CandidateTable::push`] for
    /// *any* insertion order, so it is a pure function of the row contents
    /// and the derived `PartialEq`/`Hash` stay canonical. Prefix-ordered
    /// producers (a trie level in creation order) yield large values and
    /// let batch scorers resume shared DP state; arbitrary orders merely
    /// yield small values, never wrong ones.
    lcp: Vec<usize>,
    /// Per-row envelope: `row_lo[i]`/`row_hi[i]` are the smallest/largest
    /// symbol index in row `i` (`lo > hi` encodes an empty row), and
    /// `row_mask[i]` is the row's symbol-set bitmask (bit `s` ⇔ the row
    /// contains symbol index `s`). Like `lcp`, all three are pure
    /// functions of the row contents maintained by
    /// [`CandidateTable::push`], so the derived `PartialEq`/`Hash` stay
    /// canonical. Distance scorers use them for O(1) admissible
    /// lower bounds that skip rows (and therefore whole shared-prefix
    /// subtrees) before any dynamic-programming work.
    row_lo: Vec<u8>,
    /// See `row_lo`.
    row_hi: Vec<u8>,
    /// See `row_lo`.
    row_mask: Vec<u32>,
    /// Per-depth (per trie level) envelope across *all* rows:
    /// `env_lo[d]`/`env_hi[d]` bound the symbol at position `d` of every
    /// row long enough to have one — the LB_Keogh-style envelope of the
    /// whole candidate set, precomputed once at construction.
    env_lo: Vec<u8>,
    /// See `env_lo`.
    env_hi: Vec<u8>,
    /// Four-row window index: `win_min_lcp[i]` / `win_lcp_sum[i]` are the
    /// minimum and sum of `lcp[i + 1..i + WINDOW]` when rows
    /// `i..i + WINDOW` all exist and have the same non-zero length, and
    /// `usize::MAX` / `0` otherwise. Like `lcp`, a pure function of the
    /// row contents maintained by [`CandidateTable::push`] (each push
    /// finalizes the entry four rows back in O(1)), so the derived
    /// `PartialEq`/`Hash` stay canonical. Lane-batched scorers read one
    /// precomputed entry instead of probing four rows' lengths and LCPs
    /// per candidate on the per-user hot path.
    win_min_lcp: Vec<usize>,
    /// See `win_min_lcp`.
    win_lcp_sum: Vec<usize>,
}

impl CandidateTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table with room for `rows` rows totalling `symbols`
    /// symbols, so bulk construction never reallocates.
    pub fn with_capacity(rows: usize, symbols: usize) -> Self {
        Self {
            symbols: Vec::with_capacity(symbols),
            offsets: Vec::with_capacity(rows),
            lcp: Vec::with_capacity(rows),
            row_lo: Vec::with_capacity(rows),
            row_hi: Vec::with_capacity(rows),
            row_mask: Vec::with_capacity(rows),
            env_lo: Vec::new(),
            env_hi: Vec::new(),
            win_min_lcp: Vec::with_capacity(rows),
            win_lcp_sum: Vec::with_capacity(rows),
        }
    }

    /// Packs a slice of owned sequences (the compatibility constructor for
    /// call sites that still produce `SymbolSeq`s).
    pub fn from_seqs(seqs: &[SymbolSeq]) -> Self {
        let total = seqs.iter().map(SymbolSeq::len).sum();
        let mut table = Self::with_capacity(seqs.len(), total);
        for seq in seqs {
            table.push(seq.symbols());
        }
        table
    }

    /// Parses one table row per string, e.g. `["acb", "ca"]` (test helper).
    pub fn parse_rows<S: AsRef<str>>(rows: &[S]) -> Result<Self> {
        let mut table = Self::new();
        for row in rows {
            table.push_seq(&SymbolSeq::parse(row.as_ref())?);
        }
        Ok(table)
    }

    /// Appends one row, extending the LCP index in O(|row|): the common
    /// prefix with the previous row is measured by direct comparison, so
    /// the index is correct for arbitrary (non-trie-ordered) insertion
    /// orders — a whole table is still built in one O(total symbols) pass.
    pub fn push(&mut self, row: &[Symbol]) {
        let lcp = match self.offsets.len() {
            0 => 0,
            rows => {
                let prev = self.row(rows - 1);
                let lcp = prev.iter().zip(row).take_while(|(a, b)| a == b).count();
                debug_assert!(
                    lcp <= prev.len() && lcp <= row.len(),
                    "lcp {lcp} exceeds a row length ({} / {})",
                    prev.len(),
                    row.len()
                );
                lcp
            }
        };
        self.symbols.extend_from_slice(row);
        self.offsets.push(self.symbols.len());
        self.lcp.push(lcp);
        // Envelope columns: one O(|row|) pass keeps every derived column a
        // pure function of the row contents (empty rows: lo > hi, mask 0).
        let (mut lo, mut hi, mut mask) = (u8::MAX, 0u8, 0u32);
        if self.env_lo.len() < row.len() {
            self.env_lo.resize(row.len(), u8::MAX);
            self.env_hi.resize(row.len(), 0);
        }
        for (d, &sym) in row.iter().enumerate() {
            let s = sym.index() as u8;
            lo = lo.min(s);
            hi = hi.max(s);
            mask |= 1 << s;
            self.env_lo[d] = self.env_lo[d].min(s);
            self.env_hi[d] = self.env_hi[d].max(s);
        }
        self.row_lo.push(lo);
        self.row_hi.push(hi);
        self.row_mask.push(mask);
        // Window index: this row's own entry starts empty (it has no
        // followers yet); the entry WINDOW − 1 rows back is now complete.
        self.win_min_lcp.push(usize::MAX);
        self.win_lcp_sum.push(0);
        let rows = self.offsets.len();
        if rows >= Self::WINDOW {
            let i = rows - Self::WINDOW;
            let l = self.row_len(i);
            if l > 0 && (i + 1..rows).all(|r| self.row_len(r) == l) {
                let followers = &self.lcp[i + 1..rows];
                self.win_min_lcp[i] = followers.iter().copied().min().unwrap_or(usize::MAX);
                self.win_lcp_sum[i] = followers.iter().sum();
            }
        }
    }

    /// Length of row `i` without materializing the slice.
    fn row_len(&self, i: usize) -> usize {
        self.offsets[i] - if i == 0 { 0 } else { self.offsets[i - 1] }
    }

    /// Appends one row from an owned sequence.
    pub fn push_seq(&mut self, seq: &SymbolSeq) {
        self.push(seq.symbols());
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total symbols across all rows (the size of the flat buffer).
    pub fn total_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// Longest common prefix of rows `i − 1` and `i` (0 for row 0).
    ///
    /// Never exceeds either row's length. Batch scorers use this to resume
    /// shared dynamic-programming state instead of recomputing it.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn lcp(&self, i: usize) -> usize {
        self.lcp[i]
    }

    /// The whole LCP index (`lcps().len() == len()`).
    pub fn lcps(&self) -> &[usize] {
        &self.lcp
    }

    /// The width of the precomputed row-window index
    /// ([`CandidateTable::window`]), matching the lane width of the
    /// candidate-parallel scorers.
    pub const WINDOW: usize = 4;

    /// The precomputed [`CandidateTable::WINDOW`]-row window starting at
    /// row `i`: `Some((min_lcp, lcp_sum))` — the minimum and sum of
    /// `lcp(i + 1..i + WINDOW)` — when rows `i..i + WINDOW` all exist and
    /// share the same non-zero length, `None` otherwise.
    ///
    /// Because the window's rows all have length `l`, every follower LCP
    /// is at most `l`, and `min_lcp` is the depth of the prefix all
    /// `WINDOW` rows provably share (the LCP chain is transitive).
    /// Lane-batched scorers consume this as one O(1) lookup per window
    /// instead of re-deriving it per user.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn window(&self, i: usize) -> Option<(usize, usize)> {
        (self.win_min_lcp[i] != usize::MAX).then(|| (self.win_min_lcp[i], self.win_lcp_sum[i]))
    }

    /// The symbol envelope of row `i`: `(lowest, highest)` symbol in the
    /// row, or `None` for an empty row.
    ///
    /// Admissible-lower-bound scorers use this to prove a row (and with
    /// prefix sharing, a whole subtree of siblings) cannot beat a running
    /// best distance without touching its dynamic program.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn envelope(&self, i: usize) -> Option<(Symbol, Symbol)> {
        let (lo, hi) = (self.row_lo[i], self.row_hi[i]);
        (lo <= hi).then(|| (Symbol::from_index(lo), Symbol::from_index(hi)))
    }

    /// The symbol-set bitmask of row `i` (bit `s` set ⇔ the row contains
    /// the symbol with index `s`; 0 for an empty row).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn row_mask(&self, i: usize) -> u32 {
        self.row_mask[i]
    }

    /// The per-depth envelope of the whole table: the `(lowest, highest)`
    /// symbol appearing at position `d` of any row, or `None` when no row
    /// is longer than `d`. This is the LB_Keogh-style envelope of the
    /// candidate set on the symbol domain, precomputed once at
    /// construction.
    pub fn depth_envelope(&self, d: usize) -> Option<(Symbol, Symbol)> {
        let (&lo, &hi) = (self.env_lo.get(d)?, self.env_hi.get(d)?);
        (lo <= hi).then(|| (Symbol::from_index(lo), Symbol::from_index(hi)))
    }

    /// The length of the longest row (the extent of the per-depth
    /// envelope).
    pub fn max_row_len(&self) -> usize {
        self.env_lo.len()
    }

    /// A 64-bit fingerprint of the table contents (FNV-1a over every row's
    /// symbols with a per-row terminator), identifying the *generation* of
    /// a candidate broadcast: two tables fingerprint equal iff their row
    /// contents and boundaries are equal.
    ///
    /// Deliberately not `std::hash::Hash`-based: FNV-1a is stable across
    /// processes, platforms, and Rust versions, so distributed shards can
    /// use the fingerprint to refuse merging aggregates that were built
    /// from different candidate tables.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for row in self.rows() {
            for &s in row {
                h = (h ^ s.index() as u64).wrapping_mul(PRIME);
            }
            // Terminator outside the symbol range, so row boundaries are
            // part of the identity: ["ab"] never collides with ["a", "b"].
            h = (h ^ 0xff).wrapping_mul(PRIME);
        }
        h
    }

    /// Row `i` as a borrowed slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> &[Symbol] {
        let start = if i == 0 { 0 } else { self.offsets[i - 1] };
        &self.symbols[start..self.offsets[i]]
    }

    /// Row `i`, or `None` when out of range.
    pub fn get(&self, i: usize) -> Option<&[Symbol]> {
        if i < self.len() {
            Some(self.row(i))
        } else {
            None
        }
    }

    /// Iterates the rows as borrowed slices, in insertion order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[Symbol]> + '_ {
        let mut start = 0;
        self.offsets.iter().map(move |&end| {
            let row = &self.symbols[start..end];
            start = end;
            row
        })
    }

    /// Row `i` as an owned [`SymbolSeq`] (allocates; cold paths only).
    pub fn seq(&self, i: usize) -> SymbolSeq {
        SymbolSeq::from_symbols(self.row(i).to_vec())
    }

    /// All rows as owned [`SymbolSeq`]s (allocates; cold paths only).
    pub fn to_seqs(&self) -> Vec<SymbolSeq> {
        self.rows()
            .map(|row| SymbolSeq::from_symbols(row.to_vec()))
            .collect()
    }
}

impl fmt::Debug for CandidateTable {
    /// Renders rows in compact letter form, e.g. `CandidateTable["acb", "ca"]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CandidateTable[")?;
        for (i, row) in self.rows().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "\"")?;
            for s in row {
                write!(f, "{}", s.as_char())?;
            }
            write!(f, "\"")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<SymbolSeq> for CandidateTable {
    fn from_iter<T: IntoIterator<Item = SymbolSeq>>(iter: T) -> Self {
        let mut table = Self::new();
        for seq in iter {
            table.push_seq(&seq);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: &[&str]) -> CandidateTable {
        CandidateTable::parse_rows(rows).unwrap()
    }

    #[test]
    fn empty_table() {
        let t = CandidateTable::new();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.total_symbols(), 0);
        assert!(t.rows().next().is_none());
        assert!(t.get(0).is_none());
    }

    #[test]
    fn rows_round_trip() {
        let t = table(&["acb", "ca", "b"]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_symbols(), 6);
        assert_eq!(t.seq(0).to_string(), "acb");
        assert_eq!(t.seq(1).to_string(), "ca");
        assert_eq!(t.seq(2).to_string(), "b");
        let seqs = t.to_seqs();
        assert_eq!(CandidateTable::from_seqs(&seqs), t);
    }

    #[test]
    fn empty_rows_are_representable() {
        let mut t = CandidateTable::new();
        t.push(&[]);
        t.push_seq(&SymbolSeq::parse("ab").unwrap());
        t.push(&[]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.row(0), &[]);
        assert_eq!(t.row(1).len(), 2);
        assert_eq!(t.row(2), &[]);
    }

    #[test]
    fn rows_iterator_matches_indexing() {
        let t = table(&["ab", "ba", "cab"]);
        let via_iter: Vec<&[Symbol]> = t.rows().collect();
        assert_eq!(via_iter.len(), t.len());
        for (i, row) in via_iter.iter().enumerate() {
            assert_eq!(*row, t.row(i));
            assert_eq!(t.get(i), Some(*row));
        }
    }

    #[test]
    fn empty_tables_are_equal_regardless_of_construction() {
        // The Eq/Hash contract: observably identical tables must compare
        // equal no matter how they were built.
        assert_eq!(CandidateTable::new(), CandidateTable::from_seqs(&[]));
        assert_eq!(CandidateTable::new(), CandidateTable::with_capacity(4, 9));
        assert_eq!(CandidateTable::new(), CandidateTable::default());
        let roundtrip = CandidateTable::from_seqs(&CandidateTable::new().to_seqs());
        assert_eq!(roundtrip, CandidateTable::new());
    }

    #[test]
    fn with_capacity_does_not_change_contents() {
        let mut a = CandidateTable::with_capacity(2, 5);
        let mut b = CandidateTable::new();
        for t in [&mut a, &mut b] {
            t.push_seq(&SymbolSeq::parse("acb").unwrap());
            t.push_seq(&SymbolSeq::parse("ba").unwrap());
        }
        assert_eq!(a, b);
    }

    #[test]
    fn debug_is_compact() {
        let t = table(&["ab", "c"]);
        assert_eq!(format!("{t:?}"), "CandidateTable[\"ab\", \"c\"]");
    }

    #[test]
    fn from_iterator_collects() {
        let t: CandidateTable = ["ab", "ba"]
            .iter()
            .map(|s| SymbolSeq::parse(s).unwrap())
            .collect();
        assert_eq!(t.len(), 2);
        assert_eq!(t.seq(1).to_string(), "ba");
    }

    #[test]
    fn fingerprint_identifies_contents_and_boundaries() {
        assert_eq!(
            table(&["acb", "ca"]).fingerprint(),
            table(&["acb", "ca"]).fingerprint()
        );
        // Different contents, same shape.
        assert_ne!(
            table(&["acb", "ca"]).fingerprint(),
            table(&["acb", "cb"]).fingerprint()
        );
        // Same symbols, different row boundaries.
        assert_ne!(
            table(&["ab"]).fingerprint(),
            table(&["a", "b"]).fingerprint()
        );
        // Row order matters (rounds identify candidates by index).
        assert_ne!(
            table(&["ab", "ba"]).fingerprint(),
            table(&["ba", "ab"]).fingerprint()
        );
        // Empty rows are part of the identity.
        let mut with_empty = table(&["ab"]);
        with_empty.push(&[]);
        assert_ne!(with_empty.fingerprint(), table(&["ab"]).fingerprint());
    }

    #[test]
    fn envelope_columns_track_row_contents() {
        let t = table(&["acb", "bd", "a"]);
        let env = |i: usize| {
            t.envelope(i)
                .map(|(lo, hi)| (lo.as_char(), hi.as_char()))
                .unwrap()
        };
        assert_eq!(env(0), ('a', 'c'));
        assert_eq!(env(1), ('b', 'd'));
        assert_eq!(env(2), ('a', 'a'));
        assert_eq!(t.row_mask(0), 0b111); // a, b, c
        assert_eq!(t.row_mask(1), 0b1010); // b, d
        assert_eq!(t.row_mask(2), 0b1);
        // Empty rows have no envelope and an empty mask.
        let mut t2 = CandidateTable::new();
        t2.push(&[]);
        assert!(t2.envelope(0).is_none());
        assert_eq!(t2.row_mask(0), 0);
    }

    #[test]
    fn depth_envelope_bounds_every_row() {
        let t = table(&["acb", "bd", "a", "abcd"]);
        assert_eq!(t.max_row_len(), 4);
        for d in 0..t.max_row_len() {
            let (lo, hi) = t.depth_envelope(d).expect("some row reaches depth");
            for row in t.rows() {
                if let Some(&sym) = row.get(d) {
                    assert!(lo <= sym && sym <= hi, "depth {d}");
                }
            }
        }
        assert!(t.depth_envelope(4).is_none());
        assert!(CandidateTable::new().depth_envelope(0).is_none());
        // Depth 0 of this table spans 'a'..='b'.
        let (lo, hi) = t.depth_envelope(0).unwrap();
        assert_eq!((lo.as_char(), hi.as_char()), ('a', 'b'));
    }

    #[test]
    fn envelope_columns_are_pure_functions_of_contents() {
        let rows = ["ab", "abc", "ba"];
        let a = table(&rows);
        let seqs: Vec<SymbolSeq> = rows.iter().map(|s| SymbolSeq::parse(s).unwrap()).collect();
        let b = CandidateTable::from_seqs(&seqs);
        // Derived Eq covers the envelope columns, so equality across
        // construction paths proves the columns are canonical.
        assert_eq!(a, b);
        for i in 0..a.len() {
            assert_eq!(a.envelope(i), b.envelope(i));
            assert_eq!(a.row_mask(i), b.row_mask(i));
        }
    }

    #[test]
    fn parse_rows_propagates_errors() {
        assert!(CandidateTable::parse_rows(&["ab", "A!"]).is_err());
    }

    #[test]
    fn lcp_tracks_shared_prefixes() {
        let t = table(&["abc", "abd", "ab", "abda", "ca"]);
        assert_eq!(t.lcps(), &[0, 2, 2, 2, 0]);
        for i in 0..t.len() {
            assert_eq!(t.lcp(i), t.lcps()[i]);
        }
    }

    #[test]
    fn window_index_matches_direct_probe() {
        // Sibling runs, a length change, an empty row, and a tail shorter
        // than the window — every entry must equal what a direct probe of
        // lengths and LCPs computes.
        let t = table(&[
            "aba", "abb", "abc", "abd", "abe", "ba", "bab", "bac", "bad", "", "cc", "cd", "ce",
            "cf",
        ]);
        for i in 0..t.len() {
            let l = t.row(i).len();
            let direct = (l > 0
                && i + CandidateTable::WINDOW <= t.len()
                && (i + 1..i + CandidateTable::WINDOW).all(|r| t.row(r).len() == l))
            .then(|| {
                let followers: Vec<usize> = (i + 1..i + CandidateTable::WINDOW)
                    .map(|r| t.lcp(r))
                    .collect();
                (
                    followers.iter().copied().min().unwrap(),
                    followers.iter().sum::<usize>(),
                )
            });
            assert_eq!(t.window(i), direct, "row {i}");
        }
        // Spot checks: the run of five length-3 rows has two live windows…
        assert_eq!(t.window(0), Some((2, 6)));
        assert_eq!(t.window(1), Some((2, 6)));
        // …the length change at row 5 kills the next ones…
        assert_eq!(t.window(2), None);
        assert_eq!(t.window(5), None);
        // …and the final length-2 run is live again.
        assert_eq!(t.window(10), Some((1, 3)));
    }

    #[test]
    fn lcp_is_bounded_by_both_row_lengths_in_any_order() {
        // Shrinking, growing, duplicate, and empty rows — the index must
        // stay within both neighbours for arbitrary insertion orders.
        let t = table(&["abab", "ab", "abab", "abab", "", "ab"]);
        assert_eq!(t.lcps(), &[0, 2, 2, 4, 0, 0]);
        for i in 1..t.len() {
            assert!(t.lcp(i) <= t.row(i).len());
            assert!(t.lcp(i) <= t.row(i - 1).len());
        }
    }

    #[test]
    fn lcp_is_a_pure_function_of_contents() {
        // Same rows via different constructors ⇒ same index (and therefore
        // the derived Eq/Hash stay canonical).
        let rows = ["ab", "abc", "ba"];
        let a = table(&rows);
        let seqs: Vec<SymbolSeq> = rows.iter().map(|s| SymbolSeq::parse(s).unwrap()).collect();
        let b = CandidateTable::from_seqs(&seqs);
        let c: CandidateTable = seqs.iter().cloned().collect();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.lcps(), b.lcps());
        assert_eq!(a.lcps(), c.lcps());
    }
}
