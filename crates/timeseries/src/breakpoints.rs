//! SAX breakpoint tables derived from the standard normal distribution.
//!
//! SAX assigns symbols by splitting the real line into `t` regions of equal
//! probability under `N(0, 1)`. The published lookup tables only go up to
//! small alphabet sizes; we generalize with a high-precision inverse normal
//! CDF so any `t ∈ [2, 26]` works.

use crate::error::{Result, TsError};
use crate::symbol::MAX_ALPHABET;

/// Inverse CDF (quantile function) of the standard normal distribution.
///
/// Peter Acklam's rational approximation; absolute error is below `1.2e-9`
/// over `(0, 1)`, far tighter than anything the SAX discretization can
/// observe, exactly zero at `p = 0.5`, and anti-symmetric about it.
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1), got {p}");

    // Coefficients of Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard normal CDF via the complementary error function (test oracle).
#[cfg(test)]
fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function (Numerical Recipes' Chebyshev fit; relative
/// error below `1.2e-7` — used only to cross-check the quantiles in tests).
#[cfg(test)]
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// The `t - 1` SAX breakpoints for alphabet size `t`: the quantiles
/// `Φ⁻¹(i/t)` for `i = 1, …, t-1`, sorted ascending.
///
/// For `t = 3` this reproduces the paper's lookup table `±0.43`.
pub fn gaussian_breakpoints(alphabet: usize) -> Result<Vec<f64>> {
    if !(2..=MAX_ALPHABET).contains(&alphabet) {
        return Err(TsError::InvalidAlphabet(alphabet));
    }
    Ok((1..alphabet)
        .map(|i| inverse_normal_cdf(i as f64 / alphabet as f64))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_match_published_values() {
        // Classic SAX lookup table entries.
        let t3 = gaussian_breakpoints(3).unwrap();
        assert!((t3[0] + 0.430_727_3).abs() < 1e-6, "{t3:?}");
        assert!((t3[1] - 0.430_727_3).abs() < 1e-6);

        let t4 = gaussian_breakpoints(4).unwrap();
        assert!((t4[0] + 0.674_489_8).abs() < 1e-6);
        assert!(t4[1].abs() < 1e-12);
        assert!((t4[2] - 0.674_489_8).abs() < 1e-6);

        let t5 = gaussian_breakpoints(5).unwrap();
        for (got, want) in t5
            .iter()
            .zip([-0.841_621_2, -0.253_347_1, 0.253_347_1, 0.841_621_2])
        {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn breakpoints_are_sorted_and_symmetric() {
        for t in 2..=26 {
            let bp = gaussian_breakpoints(t).unwrap();
            assert_eq!(bp.len(), t - 1);
            for w in bp.windows(2) {
                assert!(w[0] < w[1]);
            }
            for i in 0..bp.len() {
                let mirror = bp[bp.len() - 1 - i];
                assert!((bp[i] + mirror).abs() < 1e-9, "t={t}: {bp:?}");
            }
        }
    }

    #[test]
    fn invalid_alphabets_rejected() {
        assert!(gaussian_breakpoints(1).is_err());
        assert!(gaussian_breakpoints(0).is_err());
        assert!(gaussian_breakpoints(27).is_err());
    }

    #[test]
    fn inverse_cdf_inverts_cdf() {
        // Tolerance limited by the test-oracle erfc (~1.2e-7 relative).
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = inverse_normal_cdf(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p={p}");
        }
        assert!(inverse_normal_cdf(0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile requires")]
    fn inverse_cdf_rejects_zero() {
        inverse_normal_cdf(0.0);
    }
}
