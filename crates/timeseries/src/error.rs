use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TsError>;

/// Errors produced by the time-series substrate.
#[derive(Debug)]
pub enum TsError {
    /// A time series must contain at least one sample.
    EmptySeries,
    /// A sample was NaN or infinite.
    NonFiniteSample {
        /// Position of the offending sample.
        index: usize,
        /// The non-finite value encountered.
        value: f64,
    },
    /// The PAA segment length must be at least 1.
    InvalidSegmentLength(usize),
    /// The SAX alphabet size must lie in `[2, MAX_ALPHABET]`.
    InvalidAlphabet(usize),
    /// A symbol index was outside the alphabet it was used with.
    SymbolOutOfRange {
        /// The out-of-range symbol index.
        symbol: usize,
        /// Size of the alphabet it was used with.
        alphabet: usize,
    },
    /// A character could not be parsed as a symbol.
    InvalidSymbolChar(char),
    /// The number of labels does not match the number of series.
    LabelMismatch {
        /// Number of series in the dataset.
        series: usize,
        /// Number of labels provided.
        labels: usize,
    },
    /// A line of a UCR-format file could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for TsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsError::EmptySeries => write!(f, "time series must be non-empty"),
            TsError::NonFiniteSample { index, value } => {
                write!(f, "sample {index} is not finite: {value}")
            }
            TsError::InvalidSegmentLength(w) => {
                write!(f, "PAA segment length must be >= 1, got {w}")
            }
            TsError::InvalidAlphabet(t) => {
                write!(
                    f,
                    "SAX alphabet size must be in [2, {}], got {t}",
                    crate::symbol::MAX_ALPHABET
                )
            }
            TsError::SymbolOutOfRange { symbol, alphabet } => {
                write!(
                    f,
                    "symbol index {symbol} out of range for alphabet {alphabet}"
                )
            }
            TsError::InvalidSymbolChar(c) => write!(f, "invalid symbol character {c:?}"),
            TsError::LabelMismatch { series, labels } => {
                write!(f, "{labels} labels provided for {series} series")
            }
            TsError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            TsError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for TsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TsError {
    fn from(e: std::io::Error) -> Self {
        TsError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TsError::InvalidSegmentLength(0);
        assert!(e.to_string().contains("segment length"));
        let e = TsError::Parse {
            line: 3,
            message: "bad float".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e = TsError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }
}
