//! Piecewise Aggregate Approximation.
//!
//! The paper segments an `m`-length series into `⌈m/w⌉` pieces of segment
//! length `w` and averages each piece (§II-A). Note this parameterization is
//! by *segment length*, not by segment count as in some SAX formulations; the
//! final segment may be shorter than `w` and is averaged over its actual
//! length.

/// Number of PAA segments produced for a series of `len` samples with
/// segment length `w`: `⌈len/w⌉`.
pub fn num_segments(len: usize, w: usize) -> usize {
    len.div_ceil(w)
}

/// Computes the PAA of `values` with segment length `w`.
///
/// # Panics
///
/// Panics if `w == 0` or `values` is empty; callers go through
/// [`crate::SaxParams`], which validates both.
pub fn paa(values: &[f64], w: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(num_segments(values.len(), w));
    paa_into(values, w, &mut out);
    out
}

/// PAA variant that reuses the caller's output buffer, clearing it first.
/// Useful in hot loops over large populations of series.
pub fn paa_into(values: &[f64], w: usize, out: &mut Vec<f64>) {
    assert!(w >= 1, "PAA segment length must be >= 1");
    assert!(!values.is_empty(), "PAA input must be non-empty");
    out.clear();
    for chunk in values.chunks(w) {
        out.push(chunk.iter().sum::<f64>() / chunk.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division_averages_each_segment() {
        let v = [1.0, 3.0, 2.0, 4.0, 10.0, 20.0];
        assert_eq!(paa(&v, 2), vec![2.0, 3.0, 15.0]);
    }

    #[test]
    fn trailing_partial_segment_uses_actual_length() {
        let v = [1.0, 3.0, 5.0, 7.0, 100.0];
        // ⌈5/2⌉ = 3 segments; the last holds one sample.
        assert_eq!(paa(&v, 2), vec![2.0, 6.0, 100.0]);
    }

    #[test]
    fn segment_length_one_is_identity() {
        let v = [4.0, -1.0, 0.5];
        assert_eq!(paa(&v, 1), v.to_vec());
    }

    #[test]
    fn segment_length_longer_than_series_gives_global_mean() {
        let v = [2.0, 4.0];
        assert_eq!(paa(&v, 10), vec![3.0]);
    }

    #[test]
    fn num_segments_matches_output_len() {
        for len in 1..40 {
            for w in 1..10 {
                let v = vec![0.0; len];
                assert_eq!(paa(&v, w).len(), num_segments(len, w), "len={len} w={w}");
            }
        }
    }

    #[test]
    fn paa_into_reuses_buffer() {
        let mut buf = vec![9.0; 100];
        paa_into(&[1.0, 2.0], 1, &mut buf);
        assert_eq!(buf, vec![1.0, 2.0]);
    }

    #[test]
    fn paa_preserves_mean() {
        // With exact division the mean of PAA equals the mean of the input.
        let v: Vec<f64> = (0..32).map(|i| (i as f64).sin()).collect();
        let p = paa(&v, 4);
        let m1 = v.iter().sum::<f64>() / v.len() as f64;
        let m2 = p.iter().sum::<f64>() / p.len() as f64;
        assert!((m1 - m2).abs() < 1e-12);
    }
}
