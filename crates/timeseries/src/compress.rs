//! The compression step of Compressive SAX (§III-B): merge runs of repeated
//! symbols, keeping one representative per run. Repetition carries no shape
//! information (it encodes dwell time, which the paper deliberately
//! discards to handle time-axis scaling), so `"aaaccccccbbbbaaa"` becomes
//! `"acba"`.

use crate::symbol::SymbolSeq;

/// Removes consecutive duplicate symbols.
pub fn compress(seq: &SymbolSeq) -> SymbolSeq {
    let mut out = SymbolSeq::new();
    for &s in seq.symbols() {
        if out.last() != Some(s) {
            out.push(s);
        }
    }
    out
}

/// Whether a sequence contains no adjacent duplicates (i.e. is a fixed point
/// of [`compress`]). All sequences inside the trie must satisfy this.
pub fn is_compressed(seq: &SymbolSeq) -> bool {
    seq.bigrams().all(|(a, b)| a != b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> String {
        compress(&SymbolSeq::parse(s).unwrap()).to_string()
    }

    #[test]
    fn merges_runs() {
        assert_eq!(c("aaaccccccbbbbaaa"), "acba");
        assert_eq!(c("abc"), "abc");
        assert_eq!(c("aaaa"), "a");
        assert_eq!(c("abab"), "abab");
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(c(""), "");
        assert_eq!(c("z"), "z");
    }

    #[test]
    fn compress_is_idempotent() {
        for s in ["", "a", "aab", "aaaccccccbbbbaaa", "zyzzy"] {
            let once = compress(&SymbolSeq::parse(s).unwrap());
            let twice = compress(&once);
            assert_eq!(once, twice, "input {s:?}");
        }
    }

    #[test]
    fn output_is_always_compressed() {
        for s in ["aabbcc", "abccba", "aaa"] {
            assert!(is_compressed(&compress(&SymbolSeq::parse(s).unwrap())));
        }
        assert!(!is_compressed(&SymbolSeq::parse("aab").unwrap()));
        assert!(is_compressed(&SymbolSeq::parse("aba").unwrap()));
    }
}
