use crate::error::{Result, TsError};
use crate::series::TimeSeries;

/// A collection of time series, optionally labeled — the paper's
/// `T = {R_1, …, R_n}` with class labels for the classification task.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    series: Vec<TimeSeries>,
    labels: Option<Vec<usize>>,
}

impl Dataset {
    /// An unlabeled dataset.
    pub fn unlabeled(series: Vec<TimeSeries>) -> Self {
        Self {
            series,
            labels: None,
        }
    }

    /// A labeled dataset; label count must match the series count.
    pub fn labeled(series: Vec<TimeSeries>, labels: Vec<usize>) -> Result<Self> {
        if series.len() != labels.len() {
            return Err(TsError::LabelMismatch {
                series: series.len(),
                labels: labels.len(),
            });
        }
        Ok(Self {
            series,
            labels: Some(labels),
        })
    }

    /// Number of series `n`.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the dataset holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// All series.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Labels, if present.
    pub fn labels(&self) -> Option<&[usize]> {
        self.labels.as_deref()
    }

    /// Number of distinct classes (labeled datasets only).
    pub fn n_classes(&self) -> Option<usize> {
        self.labels.as_ref().map(|ls| {
            let mut seen: Vec<usize> = ls.clone();
            seen.sort_unstable();
            seen.dedup();
            seen.len()
        })
    }

    /// Appends one series (with a label iff the dataset is labeled).
    pub fn push(&mut self, series: TimeSeries, label: Option<usize>) -> Result<()> {
        match (&mut self.labels, label) {
            (Some(labels), Some(l)) => {
                labels.push(l);
                self.series.push(series);
                Ok(())
            }
            (None, None) => {
                self.series.push(series);
                Ok(())
            }
            (Some(labels), None) => Err(TsError::LabelMismatch {
                series: self.series.len() + 1,
                labels: labels.len(),
            }),
            (None, Some(_)) => Err(TsError::LabelMismatch {
                series: self.series.len() + 1,
                labels: 0,
            }),
        }
    }

    /// Indices of all series carrying `label`.
    pub fn class_indices(&self, label: usize) -> Vec<usize> {
        match &self.labels {
            Some(ls) => ls
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == label)
                .map(|(i, _)| i)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Splits into `(train, test)` by taking every series whose position in a
    /// deterministic permutation falls below `train_frac`.
    ///
    /// The permutation is derived from `seed` with a SplitMix64-driven
    /// Fisher–Yates shuffle so splits reproduce across runs and platforms.
    pub fn split(&self, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&train_frac),
            "train_frac must be in [0,1]"
        );
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut state = seed;
        for i in (1..order.len()).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let n_train = ((self.len() as f64) * train_frac).round() as usize;
        let (train_idx, test_idx) = order.split_at(n_train.min(order.len()));
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// A new dataset containing the given indices, in order.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            series: indices.iter().map(|&i| self.series[i].clone()).collect(),
            labels: self
                .labels
                .as_ref()
                .map(|ls| indices.iter().map(|&i| ls[i]).collect()),
        }
    }

    /// Iterates over `(series, label)` pairs; label is `usize::MAX` when the
    /// dataset is unlabeled.
    pub fn iter(&self) -> impl Iterator<Item = (&TimeSeries, usize)> + '_ {
        self.series
            .iter()
            .enumerate()
            .map(move |(i, s)| (s, self.labels.as_ref().map_or(usize::MAX, |ls| ls[i])))
    }
}

/// SplitMix64 step: tiny, high-quality, and dependency-free; used only for
/// deterministic shuffling where the statistical demands are mild.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    fn toy() -> Dataset {
        Dataset::labeled(
            vec![ts(&[1.0]), ts(&[2.0]), ts(&[3.0]), ts(&[4.0])],
            vec![0, 1, 0, 1],
        )
        .unwrap()
    }

    #[test]
    fn labeled_requires_matching_lengths() {
        assert!(Dataset::labeled(vec![ts(&[1.0])], vec![0, 1]).is_err());
    }

    #[test]
    fn class_indices_filters_by_label() {
        let d = toy();
        assert_eq!(d.class_indices(0), vec![0, 2]);
        assert_eq!(d.class_indices(1), vec![1, 3]);
        assert_eq!(d.class_indices(7), Vec::<usize>::new());
        assert_eq!(d.n_classes(), Some(2));
    }

    #[test]
    fn push_enforces_label_consistency() {
        let mut d = toy();
        assert!(d.push(ts(&[5.0]), Some(0)).is_ok());
        assert!(d.push(ts(&[6.0]), None).is_err());
        let mut u = Dataset::unlabeled(vec![ts(&[1.0])]);
        assert!(u.push(ts(&[2.0]), None).is_ok());
        assert!(u.push(ts(&[3.0]), Some(1)).is_err());
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let d = toy();
        let (tr1, te1) = d.split(0.5, 42);
        let (tr2, te2) = d.split(0.5, 42);
        assert_eq!(tr1.len(), 2);
        assert_eq!(te1.len(), 2);
        assert_eq!(tr1.series()[0], tr2.series()[0]);
        assert_eq!(te1.series()[1], te2.series()[1]);
        // Different seed gives a different (but still valid) partition.
        let (tr3, _) = d.split(0.5, 43);
        assert_eq!(tr3.len(), 2);
    }

    #[test]
    fn subset_preserves_labels() {
        let d = toy();
        let s = d.subset(&[3, 0]);
        assert_eq!(s.labels().unwrap(), &[1, 0]);
        assert_eq!(s.series()[0].values(), &[4.0]);
    }

    #[test]
    fn iter_pairs_series_with_labels() {
        let d = toy();
        let labels: Vec<usize> = d.iter().map(|(_, l)| l).collect();
        assert_eq!(labels, vec![0, 1, 0, 1]);
        let u = Dataset::unlabeled(vec![ts(&[1.0])]);
        assert_eq!(u.iter().next().unwrap().1, usize::MAX);
    }
}
