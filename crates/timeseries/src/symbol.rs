use crate::error::{Result, TsError};
use std::fmt;

/// Largest supported SAX alphabet (`'a'..='z'`).
pub const MAX_ALPHABET: usize = 26;

/// One SAX symbol, stored as its index into the alphabet (`0 ⇒ 'a'`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u8);

impl Symbol {
    /// Creates a symbol, validating it against an alphabet size.
    pub fn new(index: usize, alphabet: usize) -> Result<Self> {
        if !(2..=MAX_ALPHABET).contains(&alphabet) {
            return Err(TsError::InvalidAlphabet(alphabet));
        }
        if index >= alphabet {
            return Err(TsError::SymbolOutOfRange {
                symbol: index,
                alphabet,
            });
        }
        Ok(Symbol(index as u8))
    }

    /// Creates a symbol without alphabet validation. The caller must ensure
    /// `index < alphabet` wherever this symbol is later consumed.
    pub fn from_index(index: u8) -> Self {
        debug_assert!((index as usize) < MAX_ALPHABET);
        Symbol(index)
    }

    /// Index into the alphabet.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The display character (`'a' + index`).
    pub fn as_char(self) -> char {
        (b'a' + self.0) as char
    }

    /// Parses a lowercase ASCII letter.
    pub fn from_char(c: char) -> Result<Self> {
        if c.is_ascii_lowercase() {
            Ok(Symbol(c as u8 - b'a'))
        } else {
            Err(TsError::InvalidSymbolChar(c))
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_char())
    }
}

/// A sequence of SAX symbols — the paper's `S = {s_1, …}`.
///
/// Formats as a compact string (`"acba"`) and parses back from one, which
/// keeps tests and experiment output readable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SymbolSeq {
    symbols: Vec<Symbol>,
}

impl SymbolSeq {
    /// Empty sequence.
    pub fn new() -> Self {
        Self {
            symbols: Vec::new(),
        }
    }

    /// Builds from raw symbols.
    pub fn from_symbols(symbols: Vec<Symbol>) -> Self {
        Self { symbols }
    }

    /// Parses a string of lowercase letters, e.g. `"acba"`.
    pub fn parse(s: &str) -> Result<Self> {
        let symbols = s
            .chars()
            .map(Symbol::from_char)
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { symbols })
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the sequence holds no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Borrow the symbols.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Symbol at `i`, if present.
    pub fn get(&self, i: usize) -> Option<Symbol> {
        self.symbols.get(i).copied()
    }

    /// Final symbol, if any.
    pub fn last(&self) -> Option<Symbol> {
        self.symbols.last().copied()
    }

    /// Appends a symbol.
    pub fn push(&mut self, s: Symbol) {
        self.symbols.push(s);
    }

    /// The first `len` symbols (or the whole sequence if shorter).
    pub fn prefix(&self, len: usize) -> SymbolSeq {
        SymbolSeq {
            symbols: self.symbols[..len.min(self.symbols.len())].to_vec(),
        }
    }

    /// Returns a copy extended with `s`.
    pub fn child(&self, s: Symbol) -> SymbolSeq {
        let mut symbols = Vec::with_capacity(self.symbols.len() + 1);
        symbols.extend_from_slice(&self.symbols);
        symbols.push(s);
        SymbolSeq { symbols }
    }

    /// Truncates to `len` symbols or pads by repeating `pad`, producing a
    /// sequence of exactly `len` symbols. Used by padding-and-sampling.
    pub fn resized(&self, len: usize, pad: Symbol) -> SymbolSeq {
        let mut symbols = self.symbols.clone();
        if symbols.len() > len {
            symbols.truncate(len);
        } else {
            symbols.resize(len, pad);
        }
        SymbolSeq { symbols }
    }

    /// Iterator over consecutive pairs `(s_j, s_{j+1})` — the paper's
    /// sub-shapes.
    pub fn bigrams(&self) -> impl Iterator<Item = (Symbol, Symbol)> + '_ {
        self.symbols.windows(2).map(|w| (w[0], w[1]))
    }

    /// Largest symbol index present (useful to sanity-check alphabet sizes).
    pub fn max_index(&self) -> Option<usize> {
        self.symbols.iter().map(|s| s.index()).max()
    }

    /// Symbol indices as a numeric vector (for numeric distance measures).
    pub fn as_indices(&self) -> Vec<f64> {
        self.symbols.iter().map(|s| s.index() as f64).collect()
    }
}

impl fmt::Display for SymbolSeq {
    /// Writes the compact letter form, e.g. `acba`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.symbols {
            write!(f, "{}", s.as_char())?;
        }
        Ok(())
    }
}

impl FromIterator<Symbol> for SymbolSeq {
    fn from_iter<T: IntoIterator<Item = Symbol>>(iter: T) -> Self {
        SymbolSeq {
            symbols: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_validation() {
        assert!(Symbol::new(0, 2).is_ok());
        assert!(Symbol::new(2, 2).is_err());
        assert!(Symbol::new(0, 1).is_err());
        assert!(Symbol::new(0, 27).is_err());
    }

    #[test]
    fn symbol_char_round_trip() {
        for i in 0..26u8 {
            let s = Symbol::from_index(i);
            assert_eq!(Symbol::from_char(s.as_char()).unwrap(), s);
        }
        assert!(Symbol::from_char('A').is_err());
        assert!(Symbol::from_char('1').is_err());
    }

    #[test]
    fn parse_and_display_round_trip() {
        let seq = SymbolSeq::parse("acba").unwrap();
        assert_eq!(seq.len(), 4);
        assert_eq!(seq.to_string(), "acba");
        assert!(SymbolSeq::parse("a!b").is_err());
    }

    #[test]
    fn bigrams_enumerate_consecutive_pairs() {
        let seq = SymbolSeq::parse("abca").unwrap();
        let pairs: Vec<String> = seq.bigrams().map(|(a, b)| format!("{a}{b}")).collect();
        assert_eq!(pairs, vec!["ab", "bc", "ca"]);
        assert_eq!(SymbolSeq::parse("a").unwrap().bigrams().count(), 0);
    }

    #[test]
    fn resized_pads_and_truncates() {
        let seq = SymbolSeq::parse("ab").unwrap();
        let pad = Symbol::from_char('z').unwrap();
        assert_eq!(seq.resized(4, pad).to_string(), "abzz");
        assert_eq!(seq.resized(1, pad).to_string(), "a");
    }

    #[test]
    fn child_and_prefix() {
        let seq = SymbolSeq::parse("ab").unwrap();
        assert_eq!(
            seq.child(Symbol::from_char('c').unwrap()).to_string(),
            "abc"
        );
        assert_eq!(seq.prefix(1).to_string(), "a");
        assert_eq!(seq.prefix(10).to_string(), "ab");
    }

    #[test]
    fn as_indices_maps_letters() {
        let seq = SymbolSeq::parse("acb").unwrap();
        assert_eq!(seq.as_indices(), vec![0.0, 2.0, 1.0]);
        assert_eq!(seq.max_index(), Some(2));
    }
}
