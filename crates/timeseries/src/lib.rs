//! Time-series substrate for the PrivShape reproduction.
//!
//! This crate implements everything §II-A and §III-B of the paper rely on:
//!
//! * [`TimeSeries`] — an owned sequence of `f64` samples with summary
//!   statistics and [z-score normalization](TimeSeries::z_normalized);
//! * [`paa`] — Piecewise Aggregate Approximation with a fixed segment
//!   length `w` (the paper's `⌈m/w⌉`-piece segmentation);
//! * [`gaussian_breakpoints`] — the SAX lookup table generalized to any
//!   alphabet size via the inverse normal CDF;
//! * [`sax`] / [`compressive_sax`] — the SAX transform and the paper's
//!   Compressive SAX (run-length removal of repeated symbols);
//! * [`SymbolSeq`] — compact symbol sequences with parsing/formatting;
//! * [`CandidateTable`] — packed columnar batches of candidate shapes
//!   (one flat symbol buffer + offsets), the broadcast currency of the
//!   round hot path;
//! * [`Dataset`] — a labeled collection of series with UCR-format I/O.
//!
//! # Example
//!
//! ```
//! use privshape_timeseries::{compressive_sax, SaxParams, TimeSeries};
//!
//! // The running example of Fig. 3 in the paper: a 128-point series is
//! // compressed to "aaaccccccbbbbaaa" (w = 8, t = 3) and then to "acba".
//! let params = SaxParams::new(8, 3).unwrap();
//! let series = TimeSeries::new(fig3_series()).unwrap();
//! let shape = compressive_sax(series.z_normalized().values(), &params);
//! assert_eq!(shape.to_string(), "acba");
//! # fn fig3_series() -> Vec<f64> {
//! #     let mut v = Vec::new();
//! #     for i in 0..128usize {
//! #         let x = match i / 8 {
//! #             0..=2 => -1.0,
//! #             3..=8 => 1.5,
//! #             9..=12 => 0.0,
//! #             _ => -1.0,
//! #         };
//! #         v.push(x + 0.01 * (i as f64 % 3.0));
//! #     }
//! #     v
//! # }
//! ```

mod breakpoints;
mod compress;
mod dataset;
mod error;
mod paa;
mod sax;
mod series;
mod symbol;
mod table;
mod ucr;

pub use breakpoints::{gaussian_breakpoints, inverse_normal_cdf};
pub use compress::{compress, is_compressed};
pub use dataset::Dataset;
pub use error::{Result, TsError};
pub use paa::{num_segments, paa, paa_into};
pub use sax::{compressive_sax, sax, symbolize, SaxParams};
pub use series::TimeSeries;
pub use symbol::{Symbol, SymbolSeq, MAX_ALPHABET};
pub use table::CandidateTable;
pub use ucr::{parse_ucr, read_ucr_file, write_ucr, write_ucr_file};
