//! The Exponential-Mechanism score function (§III-C).
//!
//! The paper requires `S(·) ∝ 1/dist(·)` with the score normalized to
//! `[0, 1]` so the EM sensitivity is `Δ = 1`. We use
//!
//! ```text
//! S(x, F) = 1 / (1 + dist(x, F))
//! ```
//!
//! which is 1 on an exact match, strictly decreasing in the distance,
//! bounded in `(0, 1]` for finite distances, and 0 for infinite distances.

/// Maps a distance to the EM utility score `1 / (1 + d)`.
pub fn em_score(dist: f64) -> f64 {
    debug_assert!(dist >= 0.0, "distances must be non-negative, got {dist}");
    if dist.is_infinite() {
        0.0
    } else {
        1.0 / (1.0 + dist)
    }
}

/// Scores a batch of distances.
pub fn em_scores(dists: &[f64]) -> Vec<f64> {
    dists.iter().map(|&d| em_score(d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_scores_one() {
        assert_eq!(em_score(0.0), 1.0);
    }

    #[test]
    fn monotone_decreasing() {
        let scores = em_scores(&[0.0, 0.5, 1.0, 3.0, 100.0]);
        for w in scores.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn bounded_in_unit_interval() {
        for d in [0.0, 1e-9, 1.0, 1e6, f64::INFINITY] {
            let s = em_score(d);
            assert!((0.0..=1.0).contains(&s), "d={d} s={s}");
        }
        assert_eq!(em_score(f64::INFINITY), 0.0);
    }
}
