//! Dynamic time warping with absolute-difference local cost.
//!
//! DTW aligns two sequences by warping the time axis to minimize the summed
//! local cost along a monotone alignment path. It is the paper's default
//! metric for the clustering task and for matching extracted shapes against
//! ground truth.

/// DTW distance between two numeric sequences (full window).
///
/// Local cost is `|a_i − b_j|`; the returned value is the minimal path cost.
/// `O(n·m)` time, `O(min(n, m))` memory. Empty inputs yield `f64::INFINITY`
/// (no alignment exists).
pub fn dtw(a: &[f64], b: &[f64]) -> f64 {
    dtw_banded(a, b, None)
}

/// DTW with an optional Sakoe–Chiba band of half-width `band`.
///
/// Cells with `|i − j| > band` are excluded from the alignment. A band
/// narrower than `|n − m|` can make alignment infeasible, in which case the
/// result is `f64::INFINITY`.
pub fn dtw_banded(a: &[f64], b: &[f64], band: Option<usize>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    // Keep the shorter sequence as the inner (column) dimension so the
    // rolling rows stay small.
    let (outer, inner) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let m = inner.len();

    let mut prev = vec![f64::INFINITY; m];
    let mut curr = vec![f64::INFINITY; m];

    for (i, &x) in outer.iter().enumerate() {
        curr.fill(f64::INFINITY);
        let (lo, hi) = match band {
            Some(r) => (i.saturating_sub(r), (i + r + 1).min(m)),
            None => (0, m),
        };
        for j in lo..hi {
            let cost = (x - inner[j]).abs();
            let best = if i == 0 && j == 0 {
                0.0
            } else {
                let up = if i > 0 { prev[j] } else { f64::INFINITY };
                let left = if j > lo { curr[j - 1] } else { f64::INFINITY };
                let diag = if i > 0 && j > 0 {
                    prev[j - 1]
                } else {
                    f64::INFINITY
                };
                up.min(left).min(diag)
            };
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m - 1]
}

/// Reusable DTW engine: configuration (band) plus scratch buffers, avoiding
/// per-call allocation in hot population loops.
#[derive(Debug, Clone, Default)]
pub struct Dtw {
    band: Option<usize>,
    prev: Vec<f64>,
    curr: Vec<f64>,
}

impl Dtw {
    /// Full-window DTW engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with a Sakoe–Chiba band of half-width `band`.
    pub fn with_band(band: usize) -> Self {
        Self {
            band: Some(band),
            ..Self::default()
        }
    }

    /// Computes the DTW distance, reusing internal buffers.
    #[allow(clippy::needless_range_loop)] // banded DP indexes a window, not the full row
    pub fn dist(&mut self, a: &[f64], b: &[f64]) -> f64 {
        if a.is_empty() || b.is_empty() {
            return f64::INFINITY;
        }
        let (outer, inner) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let m = inner.len();
        self.prev.clear();
        self.prev.resize(m, f64::INFINITY);
        self.curr.clear();
        self.curr.resize(m, f64::INFINITY);

        for (i, &x) in outer.iter().enumerate() {
            self.curr.fill(f64::INFINITY);
            let (lo, hi) = match self.band {
                Some(r) => (i.saturating_sub(r), (i + r + 1).min(m)),
                None => (0, m),
            };
            for j in lo..hi {
                let cost = (x - inner[j]).abs();
                let best = if i == 0 && j == 0 {
                    0.0
                } else {
                    let up = if i > 0 { self.prev[j] } else { f64::INFINITY };
                    let left = if j > lo {
                        self.curr[j - 1]
                    } else {
                        f64::INFINITY
                    };
                    let diag = if i > 0 && j > 0 {
                        self.prev[j - 1]
                    } else {
                        f64::INFINITY
                    };
                    up.min(left).min(diag)
                };
                self.curr[j] = cost + best;
            }
            std::mem::swap(&mut self.prev, &mut self.curr);
        }
        self.prev[m - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(dtw(&a, &a), 0.0);
    }

    #[test]
    fn warping_absorbs_time_stretch() {
        // A stretched copy warps onto the original at zero cost.
        let a = [0.0, 1.0, 2.0];
        let b = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0];
        assert_eq!(dtw(&a, &b), 0.0);
    }

    #[test]
    fn known_small_case() {
        let a = [0.0, 3.0];
        let b = [1.0, 2.0];
        // Alignment (0→1),(3→2): cost 1 + 1 = 2.
        assert_eq!(dtw(&a, &b), 2.0);
    }

    #[test]
    fn symmetric() {
        let a = [0.0, 1.5, -2.0, 4.0];
        let b = [1.0, 1.0, 3.0];
        assert_eq!(dtw(&a, &b), dtw(&b, &a));
    }

    #[test]
    fn empty_input_is_infinite() {
        assert!(dtw(&[], &[1.0]).is_infinite());
        assert!(dtw(&[1.0], &[]).is_infinite());
    }

    #[test]
    fn band_zero_equals_pointwise_l1_for_equal_lengths() {
        let a = [1.0f64, 5.0, 2.0];
        let b = [2.0f64, 3.0, 2.5];
        let want: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!((dtw_banded(&a, &b, Some(0)) - want).abs() < 1e-12);
    }

    #[test]
    fn wide_band_matches_full_window() {
        let a = [0.0, 2.0, 1.0, 3.0, 0.5];
        let b = [0.5, 1.5, 1.0, 2.0];
        assert_eq!(dtw_banded(&a, &b, Some(100)), dtw(&a, &b));
    }

    #[test]
    fn too_narrow_band_is_infeasible() {
        let a = [1.0; 10];
        let b = [1.0; 2];
        assert!(dtw_banded(&a, &b, Some(1)).is_infinite());
    }

    #[test]
    fn engine_matches_free_function_and_reuses_buffers() {
        let mut eng = Dtw::new();
        let a = [0.0, 2.0, 1.0];
        let b = [0.5, 1.5];
        assert_eq!(eng.dist(&a, &b), dtw(&a, &b));
        // Different lengths on the second call exercise the buffer resize.
        let c = [4.0, 4.0, 4.0, 4.0, 4.0];
        assert_eq!(eng.dist(&a, &c), dtw(&a, &c));
        let mut banded = Dtw::with_band(1);
        assert_eq!(banded.dist(&a, &b), dtw_banded(&a, &b, Some(1)));
    }

    #[test]
    fn dtw_never_exceeds_equal_length_l1() {
        // DTW relaxes the pointwise alignment, so it is bounded above by the
        // L1 distance whenever lengths agree.
        let a = [0.3f64, -1.2, 2.2, 0.0, 1.1];
        let b = [0.0f64, -1.0, 2.0, 0.4, 0.9];
        let l1: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(dtw(&a, &b) <= l1 + 1e-12);
    }
}
