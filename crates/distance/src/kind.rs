//! Runtime-selectable distance over symbol sequences.

use crate::prefix;
use crate::workspace::DistanceWorkspace;
use crate::{euclidean_padded, hausdorff, sed};
use privshape_timeseries::{CandidateTable, Symbol, SymbolSeq};

/// A distance measure over [`SymbolSeq`]s.
///
/// Implemented by [`DistanceKind`]; a trait keeps the mechanisms generic so
/// downstream users can plug in custom measures (the paper's framework only
/// requires the relaxed subadditivity of §IV-B for the pruning lemma).
pub trait SymbolDistance {
    /// Distance between two symbol sequences; must be non-negative,
    /// symmetric, and zero on identical inputs.
    fn dist(&self, a: &SymbolSeq, b: &SymbolSeq) -> f64;
}

/// The distance measures evaluated in the paper (§V-H).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistanceKind {
    /// Dynamic time warping over symbol indices (paper default, clustering).
    #[default]
    Dtw,
    /// String edit distance (paper default, classification).
    Sed,
    /// Euclidean over symbol indices with last-symbol padding.
    Euclidean,
    /// Hausdorff over `(time, symbol)` point sets.
    Hausdorff,
}

impl DistanceKind {
    /// All variants, in the order the paper reports them.
    pub const ALL: [DistanceKind; 4] = [
        DistanceKind::Dtw,
        DistanceKind::Sed,
        DistanceKind::Euclidean,
        DistanceKind::Hausdorff,
    ];

    /// Distance between two symbol sequences under this measure.
    ///
    /// Convenience wrapper that builds a throwaway [`DistanceWorkspace`];
    /// loops should hold one workspace and call
    /// [`DistanceKind::dist_with`] instead.
    pub fn dist(&self, a: &SymbolSeq, b: &SymbolSeq) -> f64 {
        let mut ws = DistanceWorkspace::new();
        self.dist_with(&mut ws, a.symbols(), b.symbols())
    }

    /// Distance between two symbol slices, reusing the workspace's DTW
    /// rows and index buffers — no allocation once the buffers have grown
    /// to the population's longest sequence. Bit-identical to
    /// [`DistanceKind::dist`].
    pub fn dist_with(&self, ws: &mut DistanceWorkspace, a: &[Symbol], b: &[Symbol]) -> f64 {
        match self {
            DistanceKind::Sed => sed(a, b),
            DistanceKind::Dtw => {
                ws.load_indices(a, b);
                let DistanceWorkspace { dtw, ia, ib, .. } = ws;
                dtw.dist(ia, ib)
            }
            DistanceKind::Euclidean => {
                ws.load_indices(a, b);
                euclidean_padded(&ws.ia, &ws.ib)
            }
            DistanceKind::Hausdorff => {
                ws.load_indices(a, b);
                hausdorff(&ws.ia, &ws.ib)
            }
        }
    }

    /// Distances from `own` to every candidate row, written into the
    /// workspace's batch buffer and returned as a mutable slice (callers
    /// typically transform the distances into selection scores in place).
    ///
    /// Equivalent to mapping [`DistanceKind::dist_with`] over the rows,
    /// with zero allocation in steady state.
    pub fn dist_batch_with<'w, 'a, I>(
        &self,
        ws: &'w mut DistanceWorkspace,
        own: &[Symbol],
        candidates: I,
    ) -> &'w mut [f64]
    where
        I: IntoIterator<Item = &'a [Symbol]>,
    {
        let mut batch = std::mem::take(&mut ws.batch);
        batch.clear();
        for row in candidates {
            batch.push(self.dist_with(ws, own, row));
        }
        ws.batch = batch;
        &mut ws.batch
    }

    /// Distances from `own` to every row of a packed [`CandidateTable`],
    /// written into the workspace's batch buffer.
    ///
    /// Same results as [`DistanceKind::dist_batch_with`] over
    /// `table.rows()` — bit-identical, row for row — but the table's
    /// precomputed LCP index ([`CandidateTable::lcp`]) lets DTW, SED, and
    /// Euclidean *resume* dynamic-programming state shared between
    /// consecutive rows instead of recomputing it: a prefix-ordered trie
    /// level costs O(#distinct trie symbols · n) rather than
    /// O(Σ|cᵢ| · n). Hausdorff has no prefix decomposition and takes the
    /// flat path. Zero allocation in steady state.
    pub fn dist_batch_table<'w>(
        &self,
        ws: &'w mut DistanceWorkspace,
        own: &[Symbol],
        table: &CandidateTable,
    ) -> &'w mut [f64] {
        match self {
            DistanceKind::Dtw => {
                ws.load_own(own);
                #[cfg(feature = "simd")]
                {
                    let DistanceWorkspace {
                        stack,
                        block,
                        stats,
                        ia,
                        batch,
                        ..
                    } = ws;
                    prefix::dtw_batch_lanes(stack, block, stats, ia, table, batch);
                }
                #[cfg(not(feature = "simd"))]
                {
                    let DistanceWorkspace {
                        stack,
                        stats,
                        ia,
                        batch,
                        ..
                    } = ws;
                    prefix::dtw_batch(stack, stats, ia, table, batch);
                }
            }
            DistanceKind::Sed => {
                #[cfg(feature = "simd")]
                {
                    let DistanceWorkspace {
                        stack,
                        block,
                        stats,
                        batch,
                        ..
                    } = ws;
                    prefix::sed_batch_lanes(stack, block, stats, own, table, batch);
                }
                #[cfg(not(feature = "simd"))]
                {
                    let DistanceWorkspace {
                        stack,
                        stats,
                        batch,
                        ..
                    } = ws;
                    prefix::sed_batch(stack, stats, own, table, batch);
                }
            }
            DistanceKind::Euclidean => {
                ws.load_own(own);
                let DistanceWorkspace {
                    stack, ia, batch, ..
                } = ws;
                prefix::euc_batch(stack, ia, table, batch);
            }
            DistanceKind::Hausdorff => return self.dist_batch_with(ws, own, table.rows()),
        }
        &mut ws.batch
    }

    /// `(row, distance)` of the first table row nearest to `own` under
    /// this measure, or `None` for an empty table.
    ///
    /// Equivalent to a full [`DistanceKind::dist_batch_table`] scan
    /// followed by a first-strict-minimum fold, but the argmin-only
    /// contract enables **early abandoning** on top of prefix reuse: DP
    /// values only grow with candidate depth, so once a shared row's
    /// minimum exceeds the running best, every candidate extending that
    /// prefix is skipped without touching its suffix. DTW and SED rows are
    /// additionally screened by O(1) admissible envelope lower bounds
    /// ([`crate::DtwEnvelopeBound`], [`crate::SedEnvelopeBound`]) built
    /// from the table's precomputed envelope columns, killing hopeless
    /// rows before any DP work. Ties resolve to the earlier row, exactly
    /// like the full scan.
    pub fn argmin_table(
        &self,
        ws: &mut DistanceWorkspace,
        own: &[Symbol],
        table: &CandidateTable,
    ) -> Option<(usize, f64)> {
        if table.is_empty() {
            return None;
        }
        Some(match self {
            DistanceKind::Dtw => {
                ws.load_own(own);
                let DistanceWorkspace {
                    stack,
                    mins,
                    stats,
                    ia,
                    ..
                } = ws;
                prefix::dtw_argmin(stack, mins, stats, ia, table)
            }
            DistanceKind::Sed => {
                let DistanceWorkspace {
                    stack, mins, stats, ..
                } = ws;
                prefix::sed_argmin(stack, mins, stats, own, table)
            }
            DistanceKind::Euclidean => {
                ws.load_own(own);
                let DistanceWorkspace {
                    stack, mins, ia, ..
                } = ws;
                prefix::euc_argmin(stack, mins, ia, table)
            }
            DistanceKind::Hausdorff => {
                let mut best = (0usize, f64::INFINITY);
                for (i, row) in table.rows().enumerate() {
                    let d = self.dist_with(ws, own, row);
                    if d < best.1 {
                        best = (i, d);
                    }
                }
                best
            }
        })
    }

    /// Short lowercase name used in experiment output (`dtw`, `sed`, …).
    pub fn name(&self) -> &'static str {
        match self {
            DistanceKind::Dtw => "dtw",
            DistanceKind::Sed => "sed",
            DistanceKind::Euclidean => "euclidean",
            DistanceKind::Hausdorff => "hausdorff",
        }
    }
}

impl SymbolDistance for DistanceKind {
    fn dist(&self, a: &SymbolSeq, b: &SymbolSeq) -> f64 {
        DistanceKind::dist(self, a, b)
    }
}

impl std::fmt::Display for DistanceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DistanceKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "dtw" => Ok(DistanceKind::Dtw),
            "sed" => Ok(DistanceKind::Sed),
            "euclidean" | "l2" => Ok(DistanceKind::Euclidean),
            "hausdorff" => Ok(DistanceKind::Hausdorff),
            other => Err(format!(
                "unknown distance {other:?} (dtw|sed|euclidean|hausdorff)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> SymbolSeq {
        SymbolSeq::parse(s).unwrap()
    }

    #[test]
    fn all_kinds_are_zero_on_identity_and_symmetric() {
        let a = seq("acba");
        let b = seq("abdc");
        for kind in DistanceKind::ALL {
            assert_eq!(kind.dist(&a, &a), 0.0, "{kind}");
            assert_eq!(kind.dist(&a, &b), kind.dist(&b, &a), "{kind}");
            assert!(kind.dist(&a, &b) > 0.0, "{kind}");
        }
    }

    #[test]
    fn kinds_disagree_where_expected() {
        // "ac" vs "ab": SED counts one edit; DTW/Euclidean see the magnitude.
        let x = seq("ac");
        let y = seq("ab");
        assert_eq!(DistanceKind::Sed.dist(&x, &y), 1.0);
        assert_eq!(DistanceKind::Dtw.dist(&x, &y), 1.0);
        let x2 = seq("az");
        assert_eq!(DistanceKind::Sed.dist(&x2, &y), 1.0); // still one edit
        assert!(DistanceKind::Dtw.dist(&x2, &y) > 20.0); // but much farther
    }

    #[test]
    fn parse_and_display_round_trip() {
        for kind in DistanceKind::ALL {
            let parsed: DistanceKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("cosine".parse::<DistanceKind>().is_err());
        assert_eq!(
            "L2".parse::<DistanceKind>().unwrap(),
            DistanceKind::Euclidean
        );
    }

    #[test]
    fn trait_object_dispatch_works() {
        let d: &dyn SymbolDistance = &DistanceKind::Sed;
        assert_eq!(d.dist(&seq("ab"), &seq("ba")), 2.0);
    }

    #[test]
    fn workspace_path_matches_allocating_path() {
        let pairs = [
            ("acba", "abdc"),
            ("a", "zyx"),
            ("abab", "abab"),
            ("", "ab"),
            ("", ""),
        ];
        let mut ws = DistanceWorkspace::new();
        for kind in DistanceKind::ALL {
            for (a, b) in pairs {
                let (a, b) = (seq(a), seq(b));
                let fast = kind.dist_with(&mut ws, a.symbols(), b.symbols());
                let slow = kind.dist(&a, &b);
                assert!(
                    fast == slow || (fast.is_infinite() && slow.is_infinite()),
                    "{kind} {a} {b}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_pairwise() {
        let own = seq("acb");
        let cands = [seq("ab"), seq("cba"), seq("a")];
        let mut ws = DistanceWorkspace::new();
        for kind in DistanceKind::ALL {
            let rows: Vec<&[_]> = cands.iter().map(|c| c.symbols()).collect();
            let batch = kind
                .dist_batch_with(&mut ws, own.symbols(), rows.iter().copied())
                .to_vec();
            let pairwise: Vec<f64> = cands.iter().map(|c| kind.dist(&own, c)).collect();
            assert_eq!(batch, pairwise, "{kind}");
        }
        // A second batch with fewer rows must not retain stale entries.
        let batch = DistanceKind::Sed
            .dist_batch_with(&mut ws, own.symbols(), std::iter::once(cands[0].symbols()))
            .to_vec();
        assert_eq!(batch.len(), 1);
    }
}
