//! Runtime-selectable distance over symbol sequences.

use crate::{dtw, euclidean_padded, hausdorff, sed};
use privshape_timeseries::SymbolSeq;

/// A distance measure over [`SymbolSeq`]s.
///
/// Implemented by [`DistanceKind`]; a trait keeps the mechanisms generic so
/// downstream users can plug in custom measures (the paper's framework only
/// requires the relaxed subadditivity of §IV-B for the pruning lemma).
pub trait SymbolDistance {
    /// Distance between two symbol sequences; must be non-negative,
    /// symmetric, and zero on identical inputs.
    fn dist(&self, a: &SymbolSeq, b: &SymbolSeq) -> f64;
}

/// The distance measures evaluated in the paper (§V-H).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistanceKind {
    /// Dynamic time warping over symbol indices (paper default, clustering).
    #[default]
    Dtw,
    /// String edit distance (paper default, classification).
    Sed,
    /// Euclidean over symbol indices with last-symbol padding.
    Euclidean,
    /// Hausdorff over `(time, symbol)` point sets.
    Hausdorff,
}

impl DistanceKind {
    /// All variants, in the order the paper reports them.
    pub const ALL: [DistanceKind; 4] = [
        DistanceKind::Dtw,
        DistanceKind::Sed,
        DistanceKind::Euclidean,
        DistanceKind::Hausdorff,
    ];

    /// Distance between two symbol sequences under this measure.
    pub fn dist(&self, a: &SymbolSeq, b: &SymbolSeq) -> f64 {
        match self {
            DistanceKind::Dtw => dtw(&a.as_indices(), &b.as_indices()),
            DistanceKind::Sed => sed(a.symbols(), b.symbols()),
            DistanceKind::Euclidean => euclidean_padded(&a.as_indices(), &b.as_indices()),
            DistanceKind::Hausdorff => hausdorff(&a.as_indices(), &b.as_indices()),
        }
    }

    /// Short lowercase name used in experiment output (`dtw`, `sed`, …).
    pub fn name(&self) -> &'static str {
        match self {
            DistanceKind::Dtw => "dtw",
            DistanceKind::Sed => "sed",
            DistanceKind::Euclidean => "euclidean",
            DistanceKind::Hausdorff => "hausdorff",
        }
    }
}

impl SymbolDistance for DistanceKind {
    fn dist(&self, a: &SymbolSeq, b: &SymbolSeq) -> f64 {
        DistanceKind::dist(self, a, b)
    }
}

impl std::fmt::Display for DistanceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DistanceKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "dtw" => Ok(DistanceKind::Dtw),
            "sed" => Ok(DistanceKind::Sed),
            "euclidean" | "l2" => Ok(DistanceKind::Euclidean),
            "hausdorff" => Ok(DistanceKind::Hausdorff),
            other => Err(format!(
                "unknown distance {other:?} (dtw|sed|euclidean|hausdorff)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> SymbolSeq {
        SymbolSeq::parse(s).unwrap()
    }

    #[test]
    fn all_kinds_are_zero_on_identity_and_symmetric() {
        let a = seq("acba");
        let b = seq("abdc");
        for kind in DistanceKind::ALL {
            assert_eq!(kind.dist(&a, &a), 0.0, "{kind}");
            assert_eq!(kind.dist(&a, &b), kind.dist(&b, &a), "{kind}");
            assert!(kind.dist(&a, &b) > 0.0, "{kind}");
        }
    }

    #[test]
    fn kinds_disagree_where_expected() {
        // "ac" vs "ab": SED counts one edit; DTW/Euclidean see the magnitude.
        let x = seq("ac");
        let y = seq("ab");
        assert_eq!(DistanceKind::Sed.dist(&x, &y), 1.0);
        assert_eq!(DistanceKind::Dtw.dist(&x, &y), 1.0);
        let x2 = seq("az");
        assert_eq!(DistanceKind::Sed.dist(&x2, &y), 1.0); // still one edit
        assert!(DistanceKind::Dtw.dist(&x2, &y) > 20.0); // but much farther
    }

    #[test]
    fn parse_and_display_round_trip() {
        for kind in DistanceKind::ALL {
            let parsed: DistanceKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("cosine".parse::<DistanceKind>().is_err());
        assert_eq!(
            "L2".parse::<DistanceKind>().unwrap(),
            DistanceKind::Euclidean
        );
    }

    #[test]
    fn trait_object_dispatch_works() {
        let d: &dyn SymbolDistance = &DistanceKind::Sed;
        assert_eq!(d.dist(&seq("ab"), &seq("ba")), 2.0);
    }
}
