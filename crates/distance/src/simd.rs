//! Candidate-parallel lane kernels for the prefix-resumable table scorers
//! (`--features simd`).
//!
//! Four consecutive table rows of equal length `l` that share their first
//! `p` symbols also share the whole dynamic program above depth `p`: only
//! their suffix rows differ. The kernels here advance those suffix rows
//! for a *window* of four candidates at once, one lane per candidate:
//!
//! * **Sibling windows** (`p = l − 1`, the children of one trie node)
//!   advance a single row. That path is fully register-resident: the
//!   shared predecessor row is read once, each lane's running `left`
//!   chain lives in a [`F64_LANES`]-wide array, and nothing is stored per
//!   cell — only each lane's final cell ([`SiblingBlock::out`]) survives,
//!   because the lanes never feed back into the shared DP stack.
//! * **Deeper windows** (`p < l − 1`, cousins or unrelated same-length
//!   rows) advance `l − p` rows through a lane-major ping-pong scratch
//!   ([`SiblingBlock`]'s `rows`, cell `(j, lane)` at `j·LANES + lane`):
//!   the first row broadcasts from the shared scalar row, middle rows
//!   stream lane-major, and the final row stays in registers. Four
//!   independent DP recurrences interleave, so the loop-carried `left`
//!   dependency that serializes the scalar path runs four-wide.
//!
//! The caller (`prefix::dtw_batch_lanes` / `prefix::sed_batch_lanes`)
//! decides per window whether the lane work `LANES · (l − p)` is worth it
//! against the scalar resume work, so these kernels never see a window
//! that was cheaper to do serially.
//!
//! # Exactness
//!
//! Each lane computes *exactly* the scalar recurrence of
//! `prefix::dtw_extend` / `prefix::sed_extend` for its candidate — the
//! same operands in the same order, lanes never mix — with two
//! value-preserving rewrites:
//!
//! * where a predecessor value is shared across lanes (broadcast rows),
//!   the shared `up.min(diag)` of DTW is hoisted out of the lane loop
//!   (`min` is associative on totally ordered inputs, and every operand
//!   here is a non-NaN, non-negative sum of absolute differences, so no
//!   NaN or `−0.0` tie can make the grouping observable);
//! * `min` is evaluated as `if a < b { a } else { b }` ([`fmin`]), which
//!   agrees with `f64::min` everywhere except NaN operands and `±0.0`
//!   ties — neither of which is reachable from this domain.
//!
//! Recomputing a candidate's row `d` from the shared row `p` instead of
//! resuming it from its own deeper LCP is also value-preserving: a DP row
//! is a pure function of `own` and the candidate prefix it represents, so
//! *where* the computation restarts cannot change any cell. Interleaving
//! independent scalar computations cannot change their IEEE-754 results
//! either, so lane outputs are bit-identical to the scalar path (pinned
//! by the crate's property tests, which compare against the flat
//! `f64::min`-based scorer). The kernels are hand-unrolled over
//! fixed-size arrays on stable Rust — no intrinsics — and the
//! fixed-width, branch-free lane loops are what the autovectorizer turns
//! into vector arithmetic.
//!
//! Two widths are provided: the `f64x4` kernels back the protocol's
//! double-precision scorers, and an `f32x8` DTW kernel is available for
//! single-precision engines (bit-identical to the equivalent `f32` scalar
//! recurrence, *not* to the `f64` path — `f32` rounds differently).

use privshape_timeseries::Symbol;

/// Lane width of the `f64` kernels.
pub const F64_LANES: usize = 4;

/// Lane width of the `f32` kernel.
pub const F32_LANES: usize = 8;

/// Branchless minimum: identical in value to `f64::min` for non-NaN
/// operands without `±0.0` ties (the only values the DP recurrences
/// produce), but compiles to a single compare-select the autovectorizer
/// maps straight onto vector-min instructions.
#[inline(always)]
fn fmin(a: f64, b: f64) -> f64 {
    if a < b {
        a
    } else {
        b
    }
}

/// Lane state of one candidate window: the per-lane outputs, the
/// lane-major row scratch for multi-row windows, and the gathered per-step
/// lane symbols.
///
/// Owned by `DistanceWorkspace` so the batch loops reuse the buffers
/// across windows, rows, and rounds; a warmed-up scorer allocates nothing
/// here.
#[derive(Debug, Clone, Default)]
pub struct SiblingBlock {
    /// Final DP cell per lane (the candidate's distance for DTW/SED).
    out: [f64; F64_LANES],
    /// Lane-major ping-pong scratch for multi-row windows: two halves of
    /// `width · F64_LANES` cells each, cell `(j, lane)` at
    /// `j · F64_LANES + lane`.
    rows: Vec<f64>,
    /// Per-step lane symbols of the current DTW window (alphabet indices
    /// as `f64`), gathered by the batch driver.
    pub(crate) syms_f64: Vec<[f64; F64_LANES]>,
    /// Per-step lane symbols of the current SED window.
    pub(crate) syms_sym: Vec<[Symbol; F64_LANES]>,
}

impl SiblingBlock {
    /// Final DP cell per lane after a kernel call.
    pub fn out(&self) -> &[f64; F64_LANES] {
        &self.out
    }
}

/// One DTW row for four lanes, register-resident, reading the *shared*
/// predecessor row (`None` for depth 0). Returns each lane's final cell.
fn dtw_last_row_lanes(
    prev: Option<&[f64]>,
    own: &[f64],
    syms: &[f64; F64_LANES],
) -> [f64; F64_LANES] {
    debug_assert!(!own.is_empty(), "DTW needs a non-empty own sequence");
    let mut left = [f64::INFINITY; F64_LANES];
    match prev {
        None => {
            // Depth-0 row: cell (0, 0) starts the path; right neighbours
            // only have a `left` predecessor (same as scalar `dtw_extend`
            // with `i == 0`).
            for (j, &x) in own.iter().enumerate() {
                let mut v = [0.0; F64_LANES];
                for lane in 0..F64_LANES {
                    let cost = (syms[lane] - x).abs();
                    v[lane] = if j == 0 { cost } else { cost + left[lane] };
                }
                left = v;
            }
        }
        Some(prev) => {
            debug_assert!(prev.len() >= own.len());
            let mut diag = f64::INFINITY;
            for (j, &x) in own.iter().enumerate() {
                let up = prev[j];
                // Shared across lanes; hoisting it out of the lane loop is
                // value-preserving (see the module docs).
                let base = fmin(up, diag);
                let mut v = [0.0; F64_LANES];
                for lane in 0..F64_LANES {
                    let cost = (syms[lane] - x).abs();
                    v[lane] = cost + fmin(base, left[lane]);
                }
                diag = up;
                left = v;
            }
        }
    }
    left
}

/// One DTW row for four lanes reading the *shared* predecessor row,
/// storing every cell lane-major into `cur` (the first row of a
/// multi-row window).
fn dtw_step0_store(cur: &mut [f64], prev: Option<&[f64]>, own: &[f64], syms: &[f64; F64_LANES]) {
    let mut left = [f64::INFINITY; F64_LANES];
    match prev {
        None => {
            for (j, &x) in own.iter().enumerate() {
                let base = j * F64_LANES;
                for lane in 0..F64_LANES {
                    let cost = (syms[lane] - x).abs();
                    let v = if j == 0 { cost } else { cost + left[lane] };
                    cur[base + lane] = v;
                    left[lane] = v;
                }
            }
        }
        Some(prev) => {
            let mut diag = f64::INFINITY;
            for (j, &x) in own.iter().enumerate() {
                let up = prev[j];
                let shared = fmin(up, diag);
                let base = j * F64_LANES;
                for lane in 0..F64_LANES {
                    let cost = (syms[lane] - x).abs();
                    let v = cost + fmin(shared, left[lane]);
                    cur[base + lane] = v;
                    left[lane] = v;
                }
                diag = up;
            }
        }
    }
}

/// One DTW row for four lanes reading a *lane-major* predecessor row,
/// storing every cell lane-major into `cur` (a middle row of a multi-row
/// window). Per lane this is exactly the scalar `dtw_extend` recurrence —
/// `up`/`diag` are per-lane here, so nothing is hoisted.
fn dtw_step_store(cur: &mut [f64], prev: &[f64], own: &[f64], syms: &[f64; F64_LANES]) {
    let mut left = [f64::INFINITY; F64_LANES];
    let mut diag = [f64::INFINITY; F64_LANES];
    for (j, &x) in own.iter().enumerate() {
        let base = j * F64_LANES;
        for lane in 0..F64_LANES {
            let cost = (syms[lane] - x).abs();
            let up = prev[base + lane];
            let v = cost + fmin(fmin(up, left[lane]), diag[lane]);
            cur[base + lane] = v;
            diag[lane] = up;
            left[lane] = v;
        }
    }
}

/// The final DTW row of a multi-row window: reads a lane-major
/// predecessor row, keeps everything in registers, returns each lane's
/// final cell.
fn dtw_last_from_lanes(prev: &[f64], own: &[f64], syms: &[f64; F64_LANES]) -> [f64; F64_LANES] {
    let mut left = [f64::INFINITY; F64_LANES];
    let mut diag = [f64::INFINITY; F64_LANES];
    for (j, &x) in own.iter().enumerate() {
        let base = j * F64_LANES;
        let mut v = [0.0; F64_LANES];
        for lane in 0..F64_LANES {
            let cost = (syms[lane] - x).abs();
            let up = prev[base + lane];
            v[lane] = cost + fmin(fmin(up, left[lane]), diag[lane]);
            diag[lane] = up;
        }
        left = v;
    }
    left
}

/// Advances the final DTW row for four sibling candidates at once.
///
/// `prev` is the shared DP row of the common prefix (depth `l − 2`), or
/// `None` when the candidates have length 1 (no predecessor row);
/// `own` is the inner (column) dimension and must be non-empty;
/// `syms[lane]` is `lane`'s distinguishing last symbol as an alphabet
/// index.
///
/// Per lane this is exactly the scalar `dtw_extend` recurrence: the shared
/// `up`/`diag` values broadcast from `prev`, only `left` is per-lane.
pub fn dtw_last_row_f64x4(
    block: &mut SiblingBlock,
    prev: Option<&[f64]>,
    own: &[f64],
    syms: &[f64; F64_LANES],
) {
    block.out = dtw_last_row_lanes(prev, own, syms);
}

/// Advances a whole window of DTW suffix rows for four candidates at
/// once: `block.syms_f64[s][lane]` is lane `lane`'s symbol at suffix step
/// `s` (candidate depth `p + s`), `prev` is the shared DP row at depth
/// `p − 1` (`None` when `p == 0`), and the window's length-`l` candidates
/// contribute `l − p = block.syms_f64.len() ≥ 1` steps. Lane results land
/// in [`SiblingBlock::out`].
///
/// Single-step windows (sibling runs) take the fully register-resident
/// path; deeper windows ping-pong lane-major rows through the block's
/// scratch, with the final row kept in registers.
pub fn dtw_rows_f64x4(block: &mut SiblingBlock, prev: Option<&[f64]>, own: &[f64]) {
    let steps = block.syms_f64.len();
    debug_assert!(steps >= 1, "a window advances at least one row");
    if steps == 1 {
        block.out = dtw_last_row_lanes(prev, own, &block.syms_f64[0]);
        return;
    }
    let lane_w = own.len() * F64_LANES;
    if block.rows.len() < 2 * lane_w {
        block.rows.resize(2 * lane_w, 0.0);
    }
    let (a, b) = block.rows.split_at_mut(lane_w);
    let (mut cur, mut nxt) = (&mut a[..lane_w], &mut b[..lane_w]);
    dtw_step0_store(cur, prev, own, &block.syms_f64[0]);
    for syms in &block.syms_f64[1..steps - 1] {
        dtw_step_store(nxt, cur, own, syms);
        std::mem::swap(&mut cur, &mut nxt);
    }
    block.out = dtw_last_from_lanes(cur, own, &block.syms_f64[steps - 1]);
}

/// One SED row for four lanes, register-resident, reading the *shared*
/// predecessor row. Returns each lane's final cell.
fn sed_last_row_lanes(
    prev: &[f64],
    depth: usize,
    own: &[Symbol],
    syms: &[Symbol; F64_LANES],
) -> [f64; F64_LANES] {
    debug_assert!(depth >= 1);
    debug_assert!(prev.len() > own.len());
    let mut left = [depth as f64; F64_LANES];
    for (j, &o) in own.iter().enumerate() {
        let sub_base = prev[j];
        let del = prev[j + 1] + 1.0;
        let mut v = [0.0; F64_LANES];
        for lane in 0..F64_LANES {
            let sub = sub_base + if syms[lane] == o { 0.0 } else { 1.0 };
            let ins = left[lane] + 1.0;
            v[lane] = fmin(fmin(sub, del), ins);
        }
        left = v;
    }
    left
}

/// One SED row for four lanes reading the *shared* predecessor row,
/// storing every cell lane-major into `cur`.
fn sed_step0_store(
    cur: &mut [f64],
    prev: &[f64],
    depth: usize,
    own: &[Symbol],
    syms: &[Symbol; F64_LANES],
) {
    let d = depth as f64;
    let mut left = [d; F64_LANES];
    cur[..F64_LANES].fill(d);
    for (j, &o) in own.iter().enumerate() {
        let sub_base = prev[j];
        let del = prev[j + 1] + 1.0;
        let base = (j + 1) * F64_LANES;
        for lane in 0..F64_LANES {
            let sub = sub_base + if syms[lane] == o { 0.0 } else { 1.0 };
            let ins = left[lane] + 1.0;
            let v = fmin(fmin(sub, del), ins);
            cur[base + lane] = v;
            left[lane] = v;
        }
    }
}

/// One SED row for four lanes reading a *lane-major* predecessor row,
/// storing every cell lane-major into `cur`.
fn sed_step_store(
    cur: &mut [f64],
    prev: &[f64],
    depth: usize,
    own: &[Symbol],
    syms: &[Symbol; F64_LANES],
) {
    let d = depth as f64;
    let mut left = [d; F64_LANES];
    cur[..F64_LANES].fill(d);
    for (j, &o) in own.iter().enumerate() {
        let base = j * F64_LANES;
        let up = (j + 1) * F64_LANES;
        for lane in 0..F64_LANES {
            let sub = prev[base + lane] + if syms[lane] == o { 0.0 } else { 1.0 };
            let del = prev[up + lane] + 1.0;
            let ins = left[lane] + 1.0;
            let v = fmin(fmin(sub, del), ins);
            cur[up + lane] = v;
            left[lane] = v;
        }
    }
}

/// The final SED row of a multi-row window: reads a lane-major
/// predecessor row, keeps everything in registers, returns each lane's
/// final cell.
fn sed_last_from_lanes(
    prev: &[f64],
    depth: usize,
    own: &[Symbol],
    syms: &[Symbol; F64_LANES],
) -> [f64; F64_LANES] {
    let mut left = [depth as f64; F64_LANES];
    for (j, &o) in own.iter().enumerate() {
        let base = j * F64_LANES;
        let up = (j + 1) * F64_LANES;
        let mut v = [0.0; F64_LANES];
        for lane in 0..F64_LANES {
            let sub = prev[base + lane] + if syms[lane] == o { 0.0 } else { 1.0 };
            let del = prev[up + lane] + 1.0;
            let ins = left[lane] + 1.0;
            v[lane] = fmin(fmin(sub, del), ins);
        }
        left = v;
    }
    left
}

/// Advances the final SED (Levenshtein) row for four sibling candidates
/// at once.
///
/// `prev` is the shared row of the common prefix (depth `l − 1`, width
/// `own.len() + 1` — always present thanks to the depth-0 base row),
/// `depth` is the candidates' length `l ≥ 1`, and `syms[lane]` is `lane`'s
/// distinguishing last symbol. Per lane this is exactly the scalar
/// `sed_extend` recurrence; values are integer-valued so exactness is
/// immediate.
pub fn sed_last_row_f64x4(
    block: &mut SiblingBlock,
    prev: &[f64],
    depth: usize,
    own: &[Symbol],
    syms: &[Symbol; F64_LANES],
) {
    block.out = sed_last_row_lanes(prev, depth, own, syms);
}

/// Advances a whole window of SED suffix rows for four candidates at
/// once: `block.syms_sym[s][lane]` is lane `lane`'s symbol at suffix step
/// `s` (candidate depth `base_depth + 1 + s`), and `prev` is the shared
/// DP row at depth `base_depth` (the depth-0 base row when
/// `base_depth == 0`). Lane results land in [`SiblingBlock::out`].
pub fn sed_rows_f64x4(block: &mut SiblingBlock, prev: &[f64], base_depth: usize, own: &[Symbol]) {
    let steps = block.syms_sym.len();
    debug_assert!(steps >= 1, "a window advances at least one row");
    if steps == 1 {
        block.out = sed_last_row_lanes(prev, base_depth + 1, own, &block.syms_sym[0]);
        return;
    }
    let lane_w = (own.len() + 1) * F64_LANES;
    if block.rows.len() < 2 * lane_w {
        block.rows.resize(2 * lane_w, 0.0);
    }
    let (a, b) = block.rows.split_at_mut(lane_w);
    let (mut cur, mut nxt) = (&mut a[..lane_w], &mut b[..lane_w]);
    sed_step0_store(cur, prev, base_depth + 1, own, &block.syms_sym[0]);
    for (s, syms) in block.syms_sym[1..steps - 1].iter().enumerate() {
        sed_step_store(nxt, cur, base_depth + 2 + s, own, syms);
        std::mem::swap(&mut cur, &mut nxt);
    }
    block.out = sed_last_from_lanes(cur, base_depth + steps, own, &block.syms_sym[steps - 1]);
}

/// Single-precision, eight-lane variant of [`dtw_last_row_f64x4`] for
/// engines that run their DP in `f32`.
///
/// Returns each lane's final cell. Bit-identical to the equivalent scalar
/// `f32` recurrence (each lane is that scalar op sequence); **not**
/// interchangeable with the `f64` path, which rounds differently. The
/// double-precision protocol scorers do not use it.
pub fn dtw_last_row_f32x8(
    prev: Option<&[f32]>,
    own: &[f32],
    syms: &[f32; F32_LANES],
) -> [f32; F32_LANES] {
    debug_assert!(!own.is_empty(), "DTW needs a non-empty own sequence");
    #[inline(always)]
    fn fmin32(a: f32, b: f32) -> f32 {
        if a < b {
            a
        } else {
            b
        }
    }
    let mut left = [f32::INFINITY; F32_LANES];
    match prev {
        None => {
            for (j, &x) in own.iter().enumerate() {
                let mut v = [0.0f32; F32_LANES];
                for lane in 0..F32_LANES {
                    let cost = (syms[lane] - x).abs();
                    v[lane] = if j == 0 { cost } else { cost + left[lane] };
                }
                left = v;
            }
        }
        Some(prev) => {
            debug_assert!(prev.len() >= own.len());
            let mut diag = f32::INFINITY;
            for (j, &x) in own.iter().enumerate() {
                let up = prev[j];
                let base = fmin32(up, diag);
                let mut v = [0.0f32; F32_LANES];
                for lane in 0..F32_LANES {
                    let cost = (syms[lane] - x).abs();
                    v[lane] = cost + fmin32(base, left[lane]);
                }
                diag = up;
                left = v;
            }
        }
    }
    left
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar f64 reference: one DTW row, mirroring `prefix::dtw_extend`
    /// (including its `f64::min` calls — the kernels' compare-select min
    /// must agree with it on every reachable input).
    fn dtw_row_scalar(prev: Option<&[f64]>, own: &[f64], sym: f64) -> Vec<f64> {
        let mut row = Vec::with_capacity(own.len());
        let mut left = f64::INFINITY;
        match prev {
            None => {
                for (j, &x) in own.iter().enumerate() {
                    let cost = (sym - x).abs();
                    let v = if j == 0 { cost } else { cost + left };
                    row.push(v);
                    left = v;
                }
            }
            Some(prev) => {
                let mut diag = f64::INFINITY;
                for (j, &x) in own.iter().enumerate() {
                    let cost = (sym - x).abs();
                    let up = prev[j];
                    let v = cost + up.min(left).min(diag);
                    diag = up;
                    row.push(v);
                    left = v;
                }
            }
        }
        row
    }

    #[test]
    fn dtw_lanes_match_scalar_rows_cell_for_cell() {
        let own = [2.0, 0.0, 3.0, 1.0, 4.0];
        let prev = [1.0, 2.5, 0.5, 3.0, 2.0];
        let syms = [0.0, 1.0, 3.0, 5.0];
        let mut block = SiblingBlock::default();
        for prev in [None, Some(&prev[..])] {
            // Running the kernel on every own-prefix pins every cell of
            // the full row: cell `p − 1` of the prefix-`p` run equals cell
            // `p − 1` of the full run (the DP row is prefix-closed).
            for p in 1..=own.len() {
                let prev_p = prev.map(|q| &q[..p]);
                dtw_last_row_f64x4(&mut block, prev_p, &own[..p], &syms);
                for (lane, &sym) in syms.iter().enumerate() {
                    let want = dtw_row_scalar(prev_p, &own[..p], sym);
                    assert_eq!(block.out()[lane], want[p - 1], "lane {lane} prefix {p}");
                }
            }
        }
    }

    #[test]
    fn dtw_multi_row_window_matches_scalar_stack() {
        // Four candidates sharing the 2-symbol prefix "ca" (indices 2, 0)
        // with 3-step suffixes: the multi-row kernel must reproduce each
        // lane's scalar `dtw_extend` chain exactly.
        let own = [2.0, 0.0, 3.0, 1.0, 4.0, 2.0];
        let m = own.len();
        let shared = [2.0, 0.0];
        let suffixes: [[f64; 3]; F64_LANES] = [
            [0.0, 1.0, 2.0],
            [3.0, 0.0, 1.0],
            [1.0, 1.0, 1.0],
            [2.0, 3.0, 0.0],
        ];
        // Shared rows 0..2 on a scalar stack.
        let mut stack = Vec::new();
        for (d, &sym) in shared.iter().enumerate() {
            crate::prefix::dtw_extend(&mut stack, &own, d, sym);
        }
        let prev = stack[m..2 * m].to_vec();
        let mut block = SiblingBlock::default();
        block.syms_f64.clear();
        for s in 0..3 {
            let mut lane_syms = [0.0; F64_LANES];
            for (lane, suffix) in suffixes.iter().enumerate() {
                lane_syms[lane] = suffix[s];
            }
            block.syms_f64.push(lane_syms);
        }
        dtw_rows_f64x4(&mut block, Some(&prev), &own);
        for (lane, suffix) in suffixes.iter().enumerate() {
            let mut lane_stack = stack.clone();
            for (s, &sym) in suffix.iter().enumerate() {
                crate::prefix::dtw_extend(&mut lane_stack, &own, shared.len() + s, sym);
            }
            let want = lane_stack[(shared.len() + 2) * m + m - 1];
            assert_eq!(block.out()[lane], want, "lane {lane}");
        }
    }

    #[test]
    fn sed_lanes_match_scalar_recurrence() {
        use privshape_timeseries::SymbolSeq;
        let own = SymbolSeq::parse("acbd").unwrap();
        let own = own.symbols();
        // prev = SED row of the shared prefix "ab" (depth 2) vs own.
        let mut stack = Vec::new();
        crate::prefix::sed_base(&mut stack, own.len());
        let ab = SymbolSeq::parse("ab").unwrap();
        for (d, &sym) in ab.symbols().iter().enumerate() {
            crate::prefix::sed_extend(&mut stack, own, d + 1, sym);
        }
        let w = own.len() + 1;
        let prev = stack[2 * w..3 * w].to_vec();
        let syms_seq = SymbolSeq::parse("abcz").unwrap();
        let syms: [Symbol; F64_LANES] = syms_seq.symbols().try_into().unwrap();
        let mut block = SiblingBlock::default();
        // Every own-prefix pins every cell of the depth-3 row (cell `p` of
        // the prefix-`p` run is the row's cell `p`; `out` is its last).
        for p in 1..=own.len() {
            sed_last_row_f64x4(&mut block, &prev[..p + 1], 3, &own[..p], &syms);
            for (lane, &sym) in syms.iter().enumerate() {
                let mut lane_stack: Vec<f64> = Vec::new();
                crate::prefix::sed_base(&mut lane_stack, p);
                // Rebuild the prefix rows against the truncated own.
                for (d, &s) in ab.symbols().iter().enumerate() {
                    crate::prefix::sed_extend(&mut lane_stack, &own[..p], d + 1, s);
                }
                crate::prefix::sed_extend(&mut lane_stack, &own[..p], 3, sym);
                let wp = p + 1;
                let want = lane_stack[3 * wp + wp - 1];
                assert_eq!(block.out()[lane], want, "lane {lane} prefix {p}");
            }
        }
    }

    #[test]
    fn sed_multi_row_window_matches_scalar_stack() {
        use privshape_timeseries::SymbolSeq;
        let own_seq = SymbolSeq::parse("acbdca").unwrap();
        let own = own_seq.symbols();
        let w = own.len() + 1;
        // Shared prefix "cb" (depth 2); 3-step suffixes per lane.
        let shared = SymbolSeq::parse("cb").unwrap();
        let suffix_seqs = ["abc", "cab", "bbb", "dda"];
        let mut stack = Vec::new();
        crate::prefix::sed_base(&mut stack, own.len());
        for (d, &sym) in shared.symbols().iter().enumerate() {
            crate::prefix::sed_extend(&mut stack, own, d + 1, sym);
        }
        let prev = stack[2 * w..3 * w].to_vec();
        let mut block = SiblingBlock::default();
        block.syms_sym.clear();
        let suffixes: Vec<Vec<Symbol>> = suffix_seqs
            .iter()
            .map(|s| SymbolSeq::parse(s).unwrap().symbols().to_vec())
            .collect();
        for s in 0..3 {
            let mut lane_syms = [Symbol::from_index(0); F64_LANES];
            for (lane, suffix) in suffixes.iter().enumerate() {
                lane_syms[lane] = suffix[s];
            }
            block.syms_sym.push(lane_syms);
        }
        sed_rows_f64x4(&mut block, &prev, 2, own);
        for (lane, suffix) in suffixes.iter().enumerate() {
            let mut lane_stack = stack.clone();
            for (s, &sym) in suffix.iter().enumerate() {
                crate::prefix::sed_extend(&mut lane_stack, own, 3 + s, sym);
            }
            let want = lane_stack[5 * w + w - 1];
            assert_eq!(block.out()[lane], want, "lane {lane}");
        }
    }

    #[test]
    fn f32_kernel_matches_f32_scalar_reference() {
        let own = [2.0f32, 0.0, 3.0, 1.0];
        let prev = [1.0f32, 2.5, 0.5, 3.0];
        let syms = [0.0f32, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        for prev in [None, Some(&prev[..])] {
            for p in 1..=own.len() {
                let prev_p = prev.map(|q| &q[..p]);
                let out = dtw_last_row_f32x8(prev_p, &own[..p], &syms);
                for (lane, &sym) in syms.iter().enumerate() {
                    // Scalar f32 recurrence for this lane.
                    let mut left = f32::INFINITY;
                    let mut diag = f32::INFINITY;
                    let mut want = 0.0f32;
                    for (j, &x) in own[..p].iter().enumerate() {
                        let cost = (sym - x).abs();
                        let v = match prev_p {
                            None if j == 0 => cost,
                            None => cost + left,
                            Some(q) => {
                                let up = q[j];
                                let v = cost + up.min(left).min(diag);
                                diag = up;
                                v
                            }
                        };
                        left = v;
                        want = v;
                    }
                    assert_eq!(out[lane], want, "lane {lane} prefix {p}");
                }
            }
        }
    }
}
