//! Prefix-resumable batch scoring over a [`CandidateTable`].
//!
//! Candidates broadcast from a trie level are sibling paths: consecutive
//! rows share long prefixes, and the table ships a precomputed LCP index
//! ([`CandidateTable::lcp`]) saying exactly how long. Every engine here
//! keeps its dynamic-programming state as a *stack indexed by candidate
//! depth* — moving from row `i` to row `i + 1` pops back to depth
//! `lcp[i + 1]` and extends only the unshared suffix, so a level of `r`
//! candidates costs O(#distinct trie symbols · n) instead of O(Σ|cᵢ| · n).
//!
//! # Exactness
//!
//! Results are **bit-identical** to the flat per-candidate path
//! ([`crate::DistanceKind::dist_with`]), not approximately equal:
//!
//! * **DTW** — the DP table is computed with the candidate driving the
//!   outer loop. Transposing a DTW table preserves every cell bit-for-bit:
//!   local costs satisfy `|a − b| ≡ |b − a|`, and each cell is
//!   `cost + min{up, left, diag}` where `f64::min` over the (NaN-free,
//!   non-negative) predecessor set is order-independent. Accumulation
//!   happens *along the alignment path* in both orientations, so the f64
//!   result cannot depend on which sequence is outer.
//! * **SED** — Levenshtein values are integers; any correct evaluation
//!   order yields the same integer, exactly representable in `f64`.
//! * **Euclidean (padded)** — the squared-difference sum is accumulated
//!   left-to-right in both paths; the prefix engine memoizes the running
//!   partial sums by depth and resumes the identical chain.
//! * **Hausdorff** has no prefix decomposition (its directed max–min scans
//!   the whole point set per row), so [`crate::DistanceKind`] routes it to
//!   the flat path.
//!
//! The stacks also power early-abandoned argmin scans
//! ([`crate::DistanceKind::argmin_table`]): DP values only grow with depth
//! (all cost increments are non-negative, and IEEE-754 addition of
//! non-negatives is monotone), so a row whose minimum already exceeds the
//! running best proves every candidate extending that prefix is worse.

use crate::lb::{DtwEnvelopeBound, SedEnvelopeBound};
use crate::workspace::ScanStats;
use privshape_timeseries::{CandidateTable, Symbol};

/// Branchless minimum: identical in value to `f64::min` for non-NaN
/// operands without `±0.0` ties — the only values the DP recurrences
/// produce (non-negative sums of absolute differences, plus `∞`
/// sentinels) — but compiles to a single compare-select instead of
/// `f64::min`'s NaN-propagating sequence. The flat reference path keeps
/// `f64::min`, and the bit-identity property tests compare against it, so
/// this equivalence is pinned, not assumed.
#[inline(always)]
fn fmin(a: f64, b: f64) -> f64 {
    if a < b {
        a
    } else {
        b
    }
}

/// Grows `mins` to hold index `d` and records the row minimum there.
fn record_min(mins: &mut Vec<f64>, d: usize, rmin: f64) {
    if mins.len() <= d {
        mins.resize(d + 1, f64::INFINITY);
    }
    mins[d] = rmin;
}

/// Extends the DTW stack with the row at outer index `i` (candidate depth
/// `i + 1`), returning the new row's minimum. `own` is the inner (column)
/// dimension; `m = own.len()` must be non-zero.
#[inline(always)]
pub(crate) fn dtw_extend(stack: &mut Vec<f64>, own: &[f64], i: usize, sym: f64) -> f64 {
    let m = own.len();
    let need = (i + 1) * m;
    if stack.len() < need {
        stack.resize(need, 0.0);
    }
    let (prev_part, curr_part) = stack.split_at_mut(i * m);
    let curr = &mut curr_part[..m];
    let mut rmin = f64::INFINITY;
    let mut left = f64::INFINITY;
    if i == 0 {
        for (j, &x) in own.iter().enumerate() {
            let cost = (sym - x).abs();
            // Cell (0, 0) starts the path at zero accumulated cost; its
            // right neighbours only have a `left` predecessor.
            let v = if j == 0 { cost } else { cost + left };
            curr[j] = v;
            left = v;
            rmin = fmin(rmin, v);
        }
    } else {
        let prev = &prev_part[(i - 1) * m..];
        let mut diag = f64::INFINITY;
        for (j, &x) in own.iter().enumerate() {
            let cost = (sym - x).abs();
            let up = prev[j];
            let v = cost + fmin(fmin(up, left), diag);
            diag = up;
            curr[j] = v;
            left = v;
            rmin = fmin(rmin, v);
        }
    }
    rmin
}

/// Extends the SED stack with the row at candidate depth `d ≥ 1` (the
/// depth-0 base row `0..=m` must already be present), returning the new
/// row's minimum. Rows have width `own.len() + 1`.
#[inline(always)]
pub(crate) fn sed_extend(stack: &mut Vec<f64>, own: &[Symbol], d: usize, sym: Symbol) -> f64 {
    let w = own.len() + 1;
    let need = (d + 1) * w;
    if stack.len() < need {
        stack.resize(need, 0.0);
    }
    let (prev_part, curr_part) = stack.split_at_mut(d * w);
    let prev = &prev_part[(d - 1) * w..];
    let curr = &mut curr_part[..w];
    let mut left = d as f64;
    curr[0] = left;
    let mut rmin = left;
    for (j, &o) in own.iter().enumerate() {
        let sub = prev[j] + if sym == o { 0.0 } else { 1.0 };
        let del = prev[j + 1] + 1.0;
        let ins = left + 1.0;
        let v = fmin(fmin(sub, del), ins);
        curr[j + 1] = v;
        left = v;
        rmin = fmin(rmin, v);
    }
    rmin
}

/// Writes the SED base row (`stack[j] = j` for the empty candidate prefix).
pub(crate) fn sed_base(stack: &mut Vec<f64>, m: usize) {
    let w = m + 1;
    if stack.len() < w {
        stack.resize(w, 0.0);
    }
    for (j, cell) in stack[..w].iter_mut().enumerate() {
        *cell = j as f64;
    }
}

/// Extends the Euclidean prefix-sum stack to candidate depth `d ≥ 1` and
/// returns the new partial sum. `own` must be non-empty.
fn euc_extend(stack: &mut Vec<f64>, own: &[f64], d: usize, sym: f64) -> f64 {
    let n = own.len();
    let x = if d - 1 < n { own[d - 1] } else { own[n - 1] };
    let diff = x - sym;
    let v = stack[d - 1] + diff * diff;
    if stack.len() <= d {
        stack.resize(d + 1, 0.0);
    }
    stack[d] = v;
    v
}

/// Finishes a Euclidean distance for a candidate of length `l ≥ 1` whose
/// prefix sums are on the stack: continues the identical accumulation
/// chain over the candidate-padded tail, then takes the square root.
fn euc_finish(stack: &[f64], own: &[f64], cand: &[Symbol]) -> f64 {
    let (n, l) = (own.len(), cand.len());
    let mut acc = stack[l];
    if l < n {
        let last = cand[l - 1].index() as f64;
        for &x in &own[l..] {
            let diff = x - last;
            acc += diff * diff;
        }
    }
    acc.sqrt()
}

/// DTW distances from `own` (as alphabet indices) to every table row,
/// resuming shared DP rows across candidates. Bit-identical to the flat
/// path per row.
///
/// Always compiled: this is the scalar reference the lane kernels are
/// pinned against (and the dispatch target without `--features simd`).
#[cfg_attr(feature = "simd", allow(dead_code))]
pub(crate) fn dtw_batch(
    stack: &mut Vec<f64>,
    stats: &mut ScanStats,
    own: &[f64],
    table: &CandidateTable,
    out: &mut Vec<f64>,
) {
    out.clear();
    let m = own.len();
    if m == 0 {
        // No alignment exists against an empty sequence.
        out.resize(table.len(), f64::INFINITY);
        return;
    }
    stats.rows += table.len() as u64;
    let mut valid = 0usize;
    for (ci, cand) in table.rows().enumerate() {
        let l = cand.len();
        if l == 0 {
            out.push(f64::INFINITY);
            valid = 0;
            continue;
        }
        let start = table.lcp(ci).min(valid);
        for (d, &sym) in cand.iter().enumerate().skip(start) {
            dtw_extend(stack, own, d, sym.index() as f64);
        }
        valid = l;
        out.push(stack[(l - 1) * m + m - 1]);
    }
}

/// SED distances from `own` to every table row via a resumable Levenshtein
/// row stack. Exact (integer-valued) per row.
///
/// Always compiled: this is the scalar reference the lane kernels are
/// pinned against (and the dispatch target without `--features simd`).
#[cfg_attr(feature = "simd", allow(dead_code))]
pub(crate) fn sed_batch(
    stack: &mut Vec<f64>,
    stats: &mut ScanStats,
    own: &[Symbol],
    table: &CandidateTable,
    out: &mut Vec<f64>,
) {
    out.clear();
    let m = own.len();
    let w = m + 1;
    sed_base(stack, m);
    stats.rows += table.len() as u64;
    let mut valid = 0usize;
    for (ci, cand) in table.rows().enumerate() {
        let start = table.lcp(ci).min(valid);
        for (d, &sym) in cand.iter().enumerate().skip(start) {
            sed_extend(stack, own, d + 1, sym);
        }
        valid = cand.len();
        out.push(stack[cand.len() * w + w - 1]);
    }
}

/// Reads the four-row lane window starting at row `ci` off the table's
/// precomputed window index ([`CandidateTable::window`]): rows
/// `ci..ci + LANES` must all have length `l`; returns the window's common
/// prefix depth `p` (clamped to `l − 1` so at least one row is advanced)
/// and the number of DP rows the scalar resume path would compute for the
/// same four rows. `start` is the first row's resume depth.
///
/// The LCP index proves the common prefix transitively: every row's LCP
/// with its predecessor is at least `p`, so all four share their first
/// `p` symbols. The lookup is O(1) — the per-row length/LCP probe is paid
/// once at table construction, not per user on the scoring hot path.
#[cfg(feature = "simd")]
#[inline(always)]
fn lane_window(
    table: &CandidateTable,
    ci: usize,
    l: usize,
    start: usize,
) -> Option<(usize, usize)> {
    const _: () = assert!(CandidateTable::WINDOW == crate::simd::F64_LANES);
    let (min_lcp, lcp_sum) = table.window(ci)?;
    let scalar_rows = (l - start) + (CandidateTable::WINDOW - 1) * l - lcp_sum;
    Some((min_lcp.min(l - 1), scalar_rows))
}

/// Lane-parallel [`dtw_batch`]: any four consecutive same-length rows
/// advance their unshared suffix rows [`crate::simd::F64_LANES`]
/// candidates at a time through the workspace's
/// [`crate::simd::SiblingBlock`], starting from the window's common
/// prefix depth — sibling runs advance one register-resident row, cousin
/// (and deeper) windows ping-pong lane-major rows. A window engages only
/// when its total lane cell work does not exceed the scalar resume work,
/// so engagement is a strict win: no more cells than scalar, and the
/// lanes' four independent dependency chains replace the serial `left`
/// chain. Everything else takes the scalar path. Bit-identical to
/// [`dtw_batch`] — each lane is the scalar op sequence.
#[cfg(feature = "simd")]
pub(crate) fn dtw_batch_lanes(
    stack: &mut Vec<f64>,
    block: &mut crate::simd::SiblingBlock,
    stats: &mut ScanStats,
    own: &[f64],
    table: &CandidateTable,
    out: &mut Vec<f64>,
) {
    use crate::simd::{dtw_rows_f64x4, F64_LANES};
    out.clear();
    let m = own.len();
    if m == 0 {
        out.resize(table.len(), f64::INFINITY);
        return;
    }
    stats.rows += table.len() as u64;
    let mut valid = 0usize;
    let mut rows = table.rows().enumerate();
    while let Some((ci, cand)) = rows.next() {
        let l = cand.len();
        if l == 0 {
            out.push(f64::INFINITY);
            valid = 0;
            continue;
        }
        let start = table.lcp(ci).min(valid);
        if let Some((p, scalar_rows)) = lane_window(table, ci, l, start) {
            let steps = l - p;
            if F64_LANES * steps <= scalar_rows {
                // Advance the shared prefix rows (depths `start..p`)
                // once, scalar; all four lanes restart from them.
                for (d, &sym) in cand.iter().enumerate().take(p).skip(start) {
                    dtw_extend(stack, own, d, sym.index() as f64);
                }
                let lanes: [&[Symbol]; F64_LANES] =
                    std::array::from_fn(|lane| table.row(ci + lane));
                block.syms_f64.clear();
                block.syms_f64.extend(
                    (p..l).map(|d| std::array::from_fn(|lane| lanes[lane][d].index() as f64)),
                );
                let prev = (p >= 1).then(|| &stack[(p - 1) * m..p * m]);
                dtw_rows_f64x4(block, prev, own);
                out.extend_from_slice(block.out());
                stats.lane_rows += F64_LANES as u64;
                stats.lane_batches += 1;
                // The lanes never wrote the stack: rows `0..p` (the
                // common prefix — also a prefix of the window's last
                // row) are what a successor may resume from.
                valid = p;
                // The window consumed the three follower rows too.
                rows.nth(F64_LANES - 2);
                continue;
            }
        }
        for (d, &sym) in cand.iter().enumerate().skip(start) {
            dtw_extend(stack, own, d, sym.index() as f64);
        }
        valid = l;
        out.push(stack[(l - 1) * m + m - 1]);
    }
}

/// Lane-parallel [`sed_batch`] (see [`dtw_batch_lanes`]); exact
/// integer-valued results per row.
#[cfg(feature = "simd")]
pub(crate) fn sed_batch_lanes(
    stack: &mut Vec<f64>,
    block: &mut crate::simd::SiblingBlock,
    stats: &mut ScanStats,
    own: &[Symbol],
    table: &CandidateTable,
    out: &mut Vec<f64>,
) {
    use crate::simd::{sed_rows_f64x4, F64_LANES};
    out.clear();
    let m = own.len();
    let w = m + 1;
    sed_base(stack, m);
    stats.rows += table.len() as u64;
    let mut valid = 0usize;
    let mut rows = table.rows().enumerate();
    while let Some((ci, cand)) = rows.next() {
        let l = cand.len();
        let start = table.lcp(ci).min(valid);
        if l == 0 {
            out.push(stack[w - 1]);
            valid = 0;
            continue;
        }
        if let Some((p, scalar_rows)) = lane_window(table, ci, l, start) {
            let steps = l - p;
            if F64_LANES * steps <= scalar_rows {
                for (d, &sym) in cand.iter().enumerate().take(p).skip(start) {
                    sed_extend(stack, own, d + 1, sym);
                }
                let lanes: [&[Symbol]; F64_LANES] =
                    std::array::from_fn(|lane| table.row(ci + lane));
                block.syms_sym.clear();
                block
                    .syms_sym
                    .extend((p..l).map(|d| std::array::from_fn(|lane| lanes[lane][d])));
                let prev = &stack[p * w..(p + 1) * w];
                sed_rows_f64x4(block, prev, p, own);
                out.extend_from_slice(block.out());
                stats.lane_rows += F64_LANES as u64;
                stats.lane_batches += 1;
                valid = p;
                // The window consumed the three follower rows too.
                rows.nth(F64_LANES - 2);
                continue;
            }
        }
        for (d, &sym) in cand.iter().enumerate().skip(start) {
            sed_extend(stack, own, d + 1, sym);
        }
        valid = l;
        out.push(stack[l * w + w - 1]);
    }
}

/// Padded-Euclidean distances from `own` (as alphabet indices) to every
/// table row via resumable prefix sums. Bit-identical to the flat path.
pub(crate) fn euc_batch(
    stack: &mut Vec<f64>,
    own: &[f64],
    table: &CandidateTable,
    out: &mut Vec<f64>,
) {
    out.clear();
    let n = own.len();
    if stack.is_empty() {
        stack.push(0.0);
    }
    stack[0] = 0.0;
    let mut valid = 0usize;
    for (ci, cand) in table.rows().enumerate() {
        let l = cand.len();
        if l == 0 || n == 0 {
            out.push(if l == 0 && n == 0 { 0.0 } else { f64::INFINITY });
            valid = 0;
            continue;
        }
        let start = table.lcp(ci).min(valid);
        for (d, &sym) in cand.iter().enumerate().skip(start) {
            euc_extend(stack, own, d + 1, sym.index() as f64);
        }
        valid = l;
        out.push(euc_finish(stack, own, cand));
    }
}

/// `(row, distance)` of the first row minimizing DTW distance to `own`,
/// with prefix-stack reuse *and* early abandoning: once a DP row's minimum
/// exceeds the running best, no candidate extending that prefix can win,
/// so the whole subtree is skipped. Rows are additionally screened by the
/// O(1) envelope lower bound ([`DtwEnvelopeBound`]) before any DP work.
/// Both skips are strict (`> best`), so ties resolve to the earlier row,
/// exactly like a full scan with `d < best`.
pub(crate) fn dtw_argmin(
    stack: &mut Vec<f64>,
    mins: &mut Vec<f64>,
    stats: &mut ScanStats,
    own: &[f64],
    table: &CandidateTable,
) -> (usize, f64) {
    let m = own.len();
    let mut best = (0usize, f64::INFINITY);
    if m == 0 {
        return best;
    }
    stats.rows += table.len() as u64;
    let lb = DtwEnvelopeBound::new(own);
    let mut valid = 0usize;
    for (ci, cand) in table.rows().enumerate() {
        let l = cand.len();
        if l == 0 {
            valid = 0;
            continue; // infinite distance can never beat `best` strictly
        }
        let start = table.lcp(ci).min(valid);
        if start > 0 && mins[start - 1] > best.1 {
            valid = start;
            continue;
        }
        stats.lb_checked += 1;
        if let Some((lo, hi)) = table.envelope(ci) {
            if lb.bound(lo, hi) > best.1 {
                // The bound is admissible, so the true distance also
                // exceeds `best` — skip without touching the DP stack.
                stats.lb_pruned += 1;
                valid = start;
                continue;
            }
        }
        let mut abandoned = false;
        for (d, &sym) in cand.iter().enumerate().skip(start) {
            let rmin = dtw_extend(stack, own, d, sym.index() as f64);
            record_min(mins, d, rmin);
            if rmin > best.1 {
                valid = d + 1;
                abandoned = true;
                break;
            }
        }
        if abandoned {
            continue;
        }
        valid = l;
        let dist = stack[(l - 1) * m + m - 1];
        if dist < best.1 {
            best = (ci, dist);
        }
    }
    best
}

/// Early-abandoned SED argmin (see [`dtw_argmin`]), screened by the O(1)
/// symbol-set lower bound ([`SedEnvelopeBound`]).
pub(crate) fn sed_argmin(
    stack: &mut Vec<f64>,
    mins: &mut Vec<f64>,
    stats: &mut ScanStats,
    own: &[Symbol],
    table: &CandidateTable,
) -> (usize, f64) {
    let m = own.len();
    let w = m + 1;
    sed_base(stack, m);
    stats.rows += table.len() as u64;
    let lb = SedEnvelopeBound::new(own);
    let mut best = (0usize, f64::INFINITY);
    let mut valid = 0usize;
    for (ci, cand) in table.rows().enumerate() {
        let l = cand.len();
        if l == 0 {
            // Distance to the empty candidate is |own| — finite, so it
            // competes like any other row.
            valid = 0;
            let dist = m as f64;
            if dist < best.1 {
                best = (ci, dist);
            }
            continue;
        }
        let start = table.lcp(ci).min(valid);
        if start > 0 && mins[start - 1] > best.1 {
            valid = start;
            continue;
        }
        stats.lb_checked += 1;
        if lb.bound(l, table.row_mask(ci)) > best.1 {
            stats.lb_pruned += 1;
            valid = start;
            continue;
        }
        let mut abandoned = false;
        for (d, &sym) in cand.iter().enumerate().skip(start) {
            let rmin = sed_extend(stack, own, d + 1, sym);
            record_min(mins, d, rmin);
            if rmin > best.1 {
                valid = d + 1;
                abandoned = true;
                break;
            }
        }
        if abandoned {
            continue;
        }
        valid = l;
        let dist = stack[l * w + w - 1];
        if dist < best.1 {
            best = (ci, dist);
        }
    }
    best
}

/// Early-abandoned padded-Euclidean argmin (see [`dtw_argmin`]); the
/// per-depth lower bound is the square root of the running prefix sum.
pub(crate) fn euc_argmin(
    stack: &mut Vec<f64>,
    mins: &mut Vec<f64>,
    own: &[f64],
    table: &CandidateTable,
) -> (usize, f64) {
    let n = own.len();
    let mut best = (0usize, f64::INFINITY);
    if stack.is_empty() {
        stack.push(0.0);
    }
    stack[0] = 0.0;
    let mut valid = 0usize;
    for (ci, cand) in table.rows().enumerate() {
        let l = cand.len();
        if l == 0 || n == 0 {
            valid = 0;
            let dist = if l == 0 && n == 0 { 0.0 } else { f64::INFINITY };
            if dist < best.1 {
                best = (ci, dist);
            }
            continue;
        }
        let start = table.lcp(ci).min(valid);
        if start > 0 && mins[start - 1] > best.1 {
            valid = start;
            continue;
        }
        let mut abandoned = false;
        for (d, &sym) in cand.iter().enumerate().skip(start) {
            let sum = euc_extend(stack, own, d + 1, sym.index() as f64);
            let rmin = sum.sqrt();
            record_min(mins, d, rmin);
            if rmin > best.1 {
                valid = d + 1;
                abandoned = true;
                break;
            }
        }
        if abandoned {
            continue;
        }
        valid = l;
        let dist = euc_finish(stack, own, cand);
        if dist < best.1 {
            best = (ci, dist);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistanceKind, DistanceWorkspace};
    use privshape_timeseries::SymbolSeq;

    fn table(rows: &[&str]) -> CandidateTable {
        CandidateTable::parse_rows(rows).unwrap()
    }

    fn flat(kind: DistanceKind, own: &str, t: &CandidateTable) -> Vec<f64> {
        let own = SymbolSeq::parse(own).unwrap();
        t.to_seqs().iter().map(|c| kind.dist(&own, c)).collect()
    }

    fn prefix(kind: DistanceKind, own: &str, t: &CandidateTable) -> Vec<f64> {
        let own = SymbolSeq::parse(own).unwrap();
        let mut ws = DistanceWorkspace::new();
        kind.dist_batch_table(&mut ws, own.symbols(), t).to_vec()
    }

    #[test]
    fn prefix_batch_matches_flat_on_sibling_rows() {
        let t = table(&["aba", "abc", "abd", "acb", "ba"]);
        for kind in DistanceKind::ALL {
            assert_eq!(prefix(kind, "abca", &t), flat(kind, "abca", &t), "{kind}");
        }
    }

    #[test]
    fn prefix_batch_handles_empty_rows_and_empty_own() {
        let mut t = CandidateTable::new();
        t.push(&[]);
        t.push_seq(&SymbolSeq::parse("ab").unwrap());
        t.push(&[]);
        for kind in DistanceKind::ALL {
            assert_eq!(prefix(kind, "ab", &t), flat(kind, "ab", &t), "{kind}");
            assert_eq!(prefix(kind, "", &t), flat(kind, "", &t), "{kind} empty own");
        }
    }

    #[test]
    fn prefix_batch_is_correct_for_unordered_tables() {
        // Reversed / interleaved rows: smaller reuse, same answers.
        let t = table(&["ba", "aba", "ab", "abd", "aba", "c"]);
        for kind in DistanceKind::ALL {
            assert_eq!(prefix(kind, "abad", &t), flat(kind, "abad", &t), "{kind}");
        }
    }

    #[test]
    fn argmin_matches_full_scan_first_min() {
        let t = table(&["ba", "ab", "aba", "ab"]); // duplicate min rows
        let own = SymbolSeq::parse("ab").unwrap();
        let mut ws = DistanceWorkspace::new();
        for kind in DistanceKind::ALL {
            let flat = flat(kind, "ab", &t);
            let mut want = (0usize, f64::INFINITY);
            for (i, &d) in flat.iter().enumerate() {
                if d < want.1 {
                    want = (i, d);
                }
            }
            let got = kind.argmin_table(&mut ws, own.symbols(), &t).unwrap();
            assert_eq!(got, want, "{kind}");
        }
    }

    #[test]
    fn argmin_abandons_but_still_finds_a_late_winner() {
        // Best row appears last, after a deep shared prefix of bad rows —
        // abandoning the bad subtree must not lose the winner.
        let t = table(&["fefefe", "fefefa", "fefeb", "ab"]);
        let own = SymbolSeq::parse("aba").unwrap();
        let mut ws = DistanceWorkspace::new();
        for kind in DistanceKind::ALL {
            let got = kind.argmin_table(&mut ws, own.symbols(), &t).unwrap();
            assert_eq!(got.0, 3, "{kind}");
        }
    }

    #[test]
    fn argmin_on_empty_table_is_none() {
        let t = CandidateTable::new();
        let mut ws = DistanceWorkspace::new();
        for kind in DistanceKind::ALL {
            assert!(kind
                .argmin_table(&mut ws, SymbolSeq::parse("ab").unwrap().symbols(), &t)
                .is_none());
        }
    }
}
