//! Euclidean distance over sequences, with a last-value padding policy for
//! unequal lengths (shapes after Compressive SAX frequently differ in
//! length; §V-H still evaluates the Euclidean metric on them).

/// Euclidean distance between equal-length sequences.
///
/// # Panics
///
/// Panics if the lengths differ; use [`euclidean_padded`] when they may.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean requires equal lengths");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Euclidean distance where the shorter sequence is padded by repeating its
/// final value (mirroring how Compressive SAX collapses dwell time: the last
/// level is implicitly held).
///
/// Empty inputs: two empties are at distance 0; one empty is `f64::INFINITY`.
pub fn euclidean_padded(a: &[f64], b: &[f64]) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        _ => {}
    }
    let n = a.len().max(b.len());
    let last_a = *a.last().expect("checked non-empty");
    let last_b = *b.last().expect("checked non-empty");
    let mut sum = 0.0;
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(last_a);
        let y = b.get(i).copied().unwrap_or(last_b);
        let d = x - y;
        sum += d * d;
    }
    sum.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_length_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn equal_length_is_enforced() {
        euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn padded_matches_unpadded_on_equal_lengths() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.0, 1.0, 2.0];
        assert_eq!(euclidean_padded(&a, &b), euclidean(&a, &b));
    }

    #[test]
    fn padding_repeats_last_value() {
        // b = [5] padded to [5, 5]: distance to [5, 8] is 3.
        assert_eq!(euclidean_padded(&[5.0, 8.0], &[5.0]), 3.0);
        assert_eq!(euclidean_padded(&[5.0], &[5.0, 8.0]), 3.0);
    }

    #[test]
    fn empty_handling() {
        assert_eq!(euclidean_padded(&[], &[]), 0.0);
        assert!(euclidean_padded(&[], &[1.0]).is_infinite());
    }

    #[test]
    fn symmetric() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [0.0, 1.0];
        assert_eq!(euclidean_padded(&a, &b), euclidean_padded(&b, &a));
    }
}
