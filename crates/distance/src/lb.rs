//! Cheap admissible lower bounds on the symbol domain (LB_Keogh style).
//!
//! The candidate tables broadcast by the trie carry precomputed envelope
//! columns ([`CandidateTable::envelope`], [`CandidateTable::row_mask`]):
//! each row's lowest/highest symbol and symbol set. Against a fixed `own`
//! sequence, those columns turn into **O(1)-per-row lower bounds** on the
//! true elastic distance — evaluated before any dynamic-programming work,
//! so an argmin scan can reject a row (and, with prefix sharing, every
//! sibling of a doomed subtree, each at O(1)) without touching its DP.
//!
//! # Admissibility
//!
//! * **DTW** ([`DtwEnvelopeBound`]) — every element of `own` is aligned to
//!   at least one candidate element, and its local cost `|own_j − c|` is
//!   at least the gap from `own_j` to the candidate's symbol interval
//!   `[lo, hi]`. Summing those gaps over `own` never exceeds the total
//!   cost along the warping path, so `Σ_j gap(own_j, [lo, hi]) ≤ DTW`.
//!   All quantities are sums of integer alphabet-index differences —
//!   exactly representable in `f64`, so the comparison is exact.
//! * **SED** ([`SedEnvelopeBound`]) — any edit script must (a) bridge the
//!   length difference, one insertion/deletion each, and (b) rewrite or
//!   delete every `own` position holding a symbol the candidate does not
//!   contain at all, one edit each — and those edits are distinct per
//!   position. Hence `max(|m − l|, #own positions with symbol ∉
//!   candidate) ≤ SED`.
//!
//! Bounds are *lower* bounds only — rows they keep still run the full DP,
//! so results are bit-identical to a scan without bounds (pinned by the
//! admissibility property tests). Both profiles are built once per scan in
//! O(alphabet + |own|).

use privshape_timeseries::{Symbol, MAX_ALPHABET};

/// Per-`own` profile for the O(1) DTW envelope bound.
///
/// Precomputes, for every alphabet index `s`, the total gap of `own`
/// below and above `s`, so `bound(lo, hi)` is two table lookups and one
/// addition.
#[derive(Debug, Clone)]
pub struct DtwEnvelopeBound {
    /// `below[s] = Σ_j max(0, s − own_j)`.
    below: [f64; MAX_ALPHABET],
    /// `above[s] = Σ_j max(0, own_j − s)`.
    above: [f64; MAX_ALPHABET],
}

impl DtwEnvelopeBound {
    /// Builds the profile for `own` given as alphabet indices (the
    /// workspace's numeric view). O(alphabet + |own|).
    pub fn new(own: &[f64]) -> Self {
        let mut cnt = [0u64; MAX_ALPHABET];
        for &x in own {
            cnt[x as usize] += 1;
        }
        // below[s + 1] − below[s] = #{j : own_j ≤ s}; integer recurrences
        // evaluated in u64, converted once — every value is exact in f64.
        let mut below = [0.0; MAX_ALPHABET];
        let (mut acc, mut le) = (0u64, 0u64);
        for (s, slot) in below.iter_mut().enumerate() {
            *slot = acc as f64;
            le += cnt[s];
            acc += le;
        }
        let mut above = [0.0; MAX_ALPHABET];
        let (mut acc, mut ge) = (0u64, 0u64);
        for (s, slot) in above.iter_mut().enumerate().rev() {
            *slot = acc as f64;
            ge += cnt[s];
            acc += ge;
        }
        Self { below, above }
    }

    /// The admissible bound against a candidate whose symbols all lie in
    /// `[lo, hi]`: `Σ_j gap(own_j, [lo, hi]) ≤ DTW(own, candidate)`.
    #[inline]
    pub fn bound(&self, lo: Symbol, hi: Symbol) -> f64 {
        self.below[lo.index()] + self.above[hi.index()]
    }
}

/// Per-`own` profile for the O(1) SED envelope bound.
#[derive(Debug, Clone)]
pub struct SedEnvelopeBound {
    /// Occurrence count of each symbol in `own`.
    hist: [u64; MAX_ALPHABET],
    /// `own.len()`.
    m: usize,
}

impl SedEnvelopeBound {
    /// Builds the profile for `own`. O(|own|).
    pub fn new(own: &[Symbol]) -> Self {
        let mut hist = [0u64; MAX_ALPHABET];
        for &s in own {
            hist[s.index()] += 1;
        }
        Self { hist, m: own.len() }
    }

    /// The admissible bound against a candidate of length `cand_len`
    /// whose symbol set is `mask` (bit `s` ⇔ contains symbol index `s`):
    /// `max(|m − l|, #own positions whose symbol ∉ mask) ≤ SED`.
    #[inline]
    pub fn bound(&self, cand_len: usize, mask: u32) -> f64 {
        let mut present = 0u64;
        let mut mask = mask;
        while mask != 0 {
            present += self.hist[mask.trailing_zeros() as usize];
            mask &= mask - 1;
        }
        let missing = self.m as u64 - present;
        (self.m.abs_diff(cand_len) as u64).max(missing) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DistanceKind;
    use privshape_timeseries::{CandidateTable, SymbolSeq};

    #[test]
    fn dtw_bound_is_admissible_and_tight_on_disjoint_ranges() {
        let own = SymbolSeq::parse("aabb").unwrap();
        let idx: Vec<f64> = own.as_indices();
        let lb = DtwEnvelopeBound::new(&idx);
        let t = CandidateTable::parse_rows(&["dd", "ab", "dzd"]).unwrap();
        for i in 0..t.len() {
            let (lo, hi) = t.envelope(i).unwrap();
            let d = DistanceKind::Dtw.dist(&own, &t.seq(i));
            assert!(lb.bound(lo, hi) <= d, "row {i}: {} > {d}", lb.bound(lo, hi));
        }
        // "dd" is entirely above own's range: every own element gaps to 'd'.
        let (lo, hi) = t.envelope(0).unwrap();
        assert_eq!(lb.bound(lo, hi), (3 + 3 + 2 + 2) as f64);
        // A candidate covering own's range bounds to zero.
        let (lo, hi) = t.envelope(1).unwrap();
        assert_eq!(lb.bound(lo, hi), 0.0);
    }

    #[test]
    fn sed_bound_is_admissible() {
        let own = SymbolSeq::parse("abca").unwrap();
        let lb = SedEnvelopeBound::new(own.symbols());
        let t = CandidateTable::parse_rows(&["dd", "abca", "a", "zzzzzzzz"]).unwrap();
        for i in 0..t.len() {
            let d = DistanceKind::Sed.dist(&own, &t.seq(i));
            let b = lb.bound(t.row(i).len(), t.row_mask(i));
            assert!(b <= d, "row {i}: {b} > {d}");
        }
        // "dd": all four own symbols are absent from the candidate.
        assert_eq!(lb.bound(2, t.row_mask(0)), 4.0);
        // Identical sequence bounds to zero.
        assert_eq!(lb.bound(4, t.row_mask(1)), 0.0);
        // Length dominates when symbols all match.
        assert_eq!(lb.bound(1, t.row_mask(2)), 3.0);
    }

    #[test]
    fn empty_own_bounds_are_zero_or_length() {
        let lb = DtwEnvelopeBound::new(&[]);
        assert_eq!(lb.bound(Symbol::from_index(0), Symbol::from_index(25)), 0.0);
        let slb = SedEnvelopeBound::new(&[]);
        assert_eq!(slb.bound(3, 0b111), 3.0);
        assert_eq!(slb.bound(0, 0), 0.0);
    }
}
