//! Symmetric Hausdorff distance between sequences viewed as point sets
//! `{(i, a_i)}` in the time–value plane.
//!
//! §IV-B lists Hausdorff among the metrics satisfying the relaxed
//! subadditivity assumption `dist(S) ≤ dist(PRE) + dist(SUF)`, so it is a
//! valid plug-in for the EM score function. Time coordinates are normalized
//! to `[0, 1]` so that sequences of different lengths remain comparable.

/// Symmetric Hausdorff distance: `max(h(a→b), h(b→a))` where
/// `h(x→y) = max_{p∈x} min_{q∈y} ‖p − q‖₂`.
pub fn hausdorff(a: &[f64], b: &[f64]) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        _ => {}
    }
    directed(a, b).max(directed(b, a))
}

fn directed(from: &[f64], to: &[f64]) -> f64 {
    let fx = |i: usize, n: usize| {
        if n <= 1 {
            0.0
        } else {
            i as f64 / (n - 1) as f64
        }
    };
    let mut worst = 0.0f64;
    for (i, &av) in from.iter().enumerate() {
        let ax = fx(i, from.len());
        let mut best = f64::INFINITY;
        for (j, &bv) in to.iter().enumerate() {
            let bx = fx(j, to.len());
            let dx = ax - bx;
            let dy = av - bv;
            best = best.min((dx * dx + dy * dy).sqrt());
            if best == 0.0 {
                break;
            }
        }
        worst = worst.max(best);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_are_at_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(hausdorff(&a, &a), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = [0.0, 1.0, 0.0];
        let b = [0.5, 0.5];
        assert_eq!(hausdorff(&a, &b), hausdorff(&b, &a));
    }

    #[test]
    fn constant_offset_is_the_offset() {
        let a = [0.0, 0.0, 0.0];
        let b = [2.0, 2.0, 2.0];
        assert!((hausdorff(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_handling() {
        assert_eq!(hausdorff(&[], &[]), 0.0);
        assert!(hausdorff(&[], &[1.0]).is_infinite());
    }

    #[test]
    fn captures_worst_case_point() {
        // One outlier point dominates the distance.
        let a = [0.0, 0.0, 10.0];
        let b = [0.0, 0.0, 0.0];
        assert!(hausdorff(&a, &b) >= 10.0 - 1e-9);
    }

    #[test]
    fn singletons_use_normalized_time() {
        // Both singletons sit at x = 0, so only values differ.
        assert!((hausdorff(&[1.0], &[4.0]) - 3.0).abs() < 1e-12);
    }
}
