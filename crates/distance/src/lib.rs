//! Distance measures used throughout the PrivShape reproduction.
//!
//! The paper measures shape similarity with three string metrics — dynamic
//! time warping (DTW), string edit distance (SED), and Euclidean distance —
//! plus numeric DTW for matching extracted shapes against ground-truth
//! centroids (§II-C, §V-H). Hausdorff distance is included because §IV-B
//! names it among the metrics satisfying the relaxed prefix/suffix
//! decomposition assumption.
//!
//! Symbol sequences are treated as numeric series over their alphabet
//! indices (`'a' = 0, 'b' = 1, …`), so DTW/Euclidean costs reflect *how far
//! apart* two symbols are, while SED only counts edits.
//!
//! Hot loops score through a reusable [`DistanceWorkspace`]
//! ([`DistanceKind::dist_with`], [`DistanceKind::dist_batch_with`]) that
//! keeps DTW rows and index buffers alive across calls; the plain
//! [`DistanceKind::dist`] is a convenience wrapper over the same code
//! path, so both produce bit-identical results. Whole candidate batches
//! are scored with [`DistanceKind::dist_batch_table`] /
//! [`DistanceKind::argmin_table`], which exploit the packed table's LCP
//! index to resume dynamic-programming state shared between
//! prefix-ordered candidates (one trie walk instead of one DP table per
//! sibling) — still bit-identical to the flat path.
//!
//! # Example
//!
//! ```
//! use privshape_distance::{DistanceKind, em_score};
//! use privshape_timeseries::SymbolSeq;
//!
//! let a = SymbolSeq::parse("acba").unwrap();
//! let b = SymbolSeq::parse("acba").unwrap();
//! assert_eq!(DistanceKind::Dtw.dist(&a, &b), 0.0);
//! assert_eq!(em_score(0.0), 1.0); // exact match ⇒ maximal EM score
//! ```

mod dtw;
mod euclidean;
mod hausdorff;
mod kind;
mod lb;
mod prefix;
mod score;
mod sed;
#[cfg(feature = "simd")]
pub mod simd;
mod workspace;

pub use dtw::{dtw, dtw_banded, Dtw};
pub use euclidean::{euclidean, euclidean_padded};
pub use hausdorff::hausdorff;
pub use kind::{DistanceKind, SymbolDistance};
pub use lb::{DtwEnvelopeBound, SedEnvelopeBound};
pub use score::{em_score, em_scores};
pub use sed::sed;
pub use workspace::{DistanceWorkspace, ScanStats};

/// Whether this build of the crate scores sibling batches through the
/// candidate-parallel lane kernels (`--features simd`). The scalar path is
/// always compiled and stays the reference either way.
pub const fn simd_enabled() -> bool {
    cfg!(feature = "simd")
}
