//! Reusable scratch state for allocation-free distance evaluation.
//!
//! Every distance in this crate except SED works on numeric index vectors,
//! and DTW additionally needs two DP rows. The plain
//! [`DistanceKind::dist`](crate::DistanceKind::dist) entry point used to
//! rebuild all of those on every call — three heap allocations per
//! user × candidate pair on the protocol hot path. A [`DistanceWorkspace`]
//! owns the buffers once and is reused across calls (and across rounds,
//! when held per worker thread), so steady-state scoring performs no
//! allocation at all.

use crate::dtw::Dtw;
use privshape_timeseries::Symbol;

/// Scratch buffers for [`DistanceKind::dist_with`](crate::DistanceKind::dist_with),
/// [`DistanceKind::dist_batch_with`](crate::DistanceKind::dist_batch_with),
/// and the prefix-resumable table scorers
/// ([`DistanceKind::dist_batch_table`](crate::DistanceKind::dist_batch_table),
/// [`DistanceKind::argmin_table`](crate::DistanceKind::argmin_table)).
///
/// Holds the DTW rolling rows, the two symbol→`f64` index buffers, a
/// batch-score output buffer, and the depth-indexed DP row stack (plus its
/// per-depth minima) that lets table scoring resume shared state across
/// prefix-ordered candidates. Buffers only ever grow, so a workspace that
/// has seen the longest sequence in a population never allocates again.
/// Results are bit-identical to the allocating path (enforced by the
/// workspace-equality property test).
///
/// # Example
///
/// ```
/// use privshape_distance::{DistanceKind, DistanceWorkspace};
/// use privshape_timeseries::SymbolSeq;
///
/// let a = SymbolSeq::parse("acba").unwrap();
/// let b = SymbolSeq::parse("aba").unwrap();
/// let mut ws = DistanceWorkspace::new();
/// let fast = DistanceKind::Dtw.dist_with(&mut ws, a.symbols(), b.symbols());
/// assert_eq!(fast, DistanceKind::Dtw.dist(&a, &b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DistanceWorkspace {
    pub(crate) dtw: Dtw,
    pub(crate) ia: Vec<f64>,
    pub(crate) ib: Vec<f64>,
    pub(crate) batch: Vec<f64>,
    /// Depth-indexed DP rows (DTW / SED) or prefix sums (Euclidean) for
    /// the prefix-resumable table scorers.
    pub(crate) stack: Vec<f64>,
    /// Per-depth row minima backing early-abandoned argmin scans.
    pub(crate) mins: Vec<f64>,
    /// Counters for the table scorers (rows scored in lanes vs scalar,
    /// lower-bound prunes); purely observational, never part of a result.
    pub(crate) stats: ScanStats,
    /// Lane-major scratch for candidate-parallel sibling batches.
    #[cfg(feature = "simd")]
    pub(crate) block: crate::simd::SiblingBlock,
}

/// Observational counters for the table scorers, accumulated on a
/// [`DistanceWorkspace`] across calls.
///
/// * `rows` — candidate rows routed through `dist_batch_table` /
///   `argmin_table` for DTW and SED (the engines with lane kernels and
///   envelope bounds).
/// * `lane_rows` / `lane_batches` — rows scored inside candidate-parallel
///   lane kernels, and kernel invocations (0 without `--features simd`).
///   `lane_rows / (lane_batches · lane width)` is the lane occupancy; a
///   low value means sibling batches were too small to fill lanes and the
///   scorer mostly ran scalar.
/// * `lb_checked` / `lb_pruned` — argmin rows where an envelope lower
///   bound was evaluated, and rows it skipped before any DP work.
///
/// Counters are observational only: they never influence scoring results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Candidate rows routed through the DTW/SED table scorers.
    pub rows: u64,
    /// Rows scored inside lane kernels.
    pub lane_rows: u64,
    /// Lane-kernel invocations.
    pub lane_batches: u64,
    /// Argmin rows where an envelope lower bound was evaluated.
    pub lb_checked: u64,
    /// Argmin rows skipped by the lower bound before any DP work.
    pub lb_pruned: u64,
}

impl ScanStats {
    /// The lane width lane occupancy is measured against (fixed so
    /// occupancy stays comparable between scalar and `simd` builds).
    pub const LANE_WIDTH: u64 = 4;

    /// Adds another set of counters into this one (used to merge
    /// per-worker workspaces into fleet totals).
    pub fn merge(&mut self, other: &ScanStats) {
        self.rows += other.rows;
        self.lane_rows += other.lane_rows;
        self.lane_batches += other.lane_batches;
        self.lb_checked += other.lb_checked;
        self.lb_pruned += other.lb_pruned;
    }

    /// Fraction of lane slots that held a real candidate
    /// (`lane_rows / (lane_batches · LANE_WIDTH)`), or `None` if no lane
    /// kernel ran.
    pub fn lane_occupancy(&self) -> Option<f64> {
        (self.lane_batches > 0)
            .then(|| self.lane_rows as f64 / (self.lane_batches * Self::LANE_WIDTH) as f64)
    }

    /// Fraction of rows scored in lanes rather than scalar
    /// (`lane_rows / rows`), or `None` if nothing was scored.
    pub fn lane_coverage(&self) -> Option<f64> {
        (self.rows > 0).then(|| self.lane_rows as f64 / self.rows as f64)
    }

    /// Fraction of bound checks that pruned a row
    /// (`lb_pruned / lb_checked`), or `None` if no bound was evaluated.
    pub fn lb_hit_rate(&self) -> Option<f64> {
        (self.lb_checked > 0).then(|| self.lb_pruned as f64 / self.lb_checked as f64)
    }
}

impl DistanceWorkspace {
    /// An empty workspace; buffers are grown lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scan counters accumulated so far (see [`ScanStats`]).
    pub fn stats(&self) -> ScanStats {
        self.stats
    }

    /// Returns the accumulated scan counters and resets them to zero
    /// (used to attribute counters to a protocol stage).
    pub fn take_stats(&mut self) -> ScanStats {
        std::mem::take(&mut self.stats)
    }

    /// Fills the two index buffers with the numeric view of `a` and `b`
    /// (the allocation-free counterpart of `SymbolSeq::as_indices`).
    pub(crate) fn load_indices(&mut self, a: &[Symbol], b: &[Symbol]) {
        self.ia.clear();
        self.ia.extend(a.iter().map(|s| s.index() as f64));
        self.ib.clear();
        self.ib.extend(b.iter().map(|s| s.index() as f64));
    }

    /// Fills only the own-sequence index buffer (table scorers read the
    /// candidate symbols straight out of the packed table).
    pub(crate) fn load_own(&mut self, a: &[Symbol]) {
        self.ia.clear();
        self.ia.extend(a.iter().map(|s| s.index() as f64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privshape_timeseries::SymbolSeq;

    #[test]
    fn load_indices_matches_as_indices() {
        let a = SymbolSeq::parse("acb").unwrap();
        let b = SymbolSeq::parse("za").unwrap();
        let mut ws = DistanceWorkspace::new();
        ws.load_indices(a.symbols(), b.symbols());
        assert_eq!(ws.ia, a.as_indices());
        assert_eq!(ws.ib, b.as_indices());
        // Reuse with shorter inputs truncates, never leaves stale tails.
        ws.load_indices(b.symbols(), &[]);
        assert_eq!(ws.ia, b.as_indices());
        assert!(ws.ib.is_empty());
    }
}
