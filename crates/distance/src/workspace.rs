//! Reusable scratch state for allocation-free distance evaluation.
//!
//! Every distance in this crate except SED works on numeric index vectors,
//! and DTW additionally needs two DP rows. The plain
//! [`DistanceKind::dist`](crate::DistanceKind::dist) entry point used to
//! rebuild all of those on every call — three heap allocations per
//! user × candidate pair on the protocol hot path. A [`DistanceWorkspace`]
//! owns the buffers once and is reused across calls (and across rounds,
//! when held per worker thread), so steady-state scoring performs no
//! allocation at all.

use crate::dtw::Dtw;
use privshape_timeseries::Symbol;

/// Scratch buffers for [`DistanceKind::dist_with`](crate::DistanceKind::dist_with),
/// [`DistanceKind::dist_batch_with`](crate::DistanceKind::dist_batch_with),
/// and the prefix-resumable table scorers
/// ([`DistanceKind::dist_batch_table`](crate::DistanceKind::dist_batch_table),
/// [`DistanceKind::argmin_table`](crate::DistanceKind::argmin_table)).
///
/// Holds the DTW rolling rows, the two symbol→`f64` index buffers, a
/// batch-score output buffer, and the depth-indexed DP row stack (plus its
/// per-depth minima) that lets table scoring resume shared state across
/// prefix-ordered candidates. Buffers only ever grow, so a workspace that
/// has seen the longest sequence in a population never allocates again.
/// Results are bit-identical to the allocating path (enforced by the
/// workspace-equality property test).
///
/// # Example
///
/// ```
/// use privshape_distance::{DistanceKind, DistanceWorkspace};
/// use privshape_timeseries::SymbolSeq;
///
/// let a = SymbolSeq::parse("acba").unwrap();
/// let b = SymbolSeq::parse("aba").unwrap();
/// let mut ws = DistanceWorkspace::new();
/// let fast = DistanceKind::Dtw.dist_with(&mut ws, a.symbols(), b.symbols());
/// assert_eq!(fast, DistanceKind::Dtw.dist(&a, &b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DistanceWorkspace {
    pub(crate) dtw: Dtw,
    pub(crate) ia: Vec<f64>,
    pub(crate) ib: Vec<f64>,
    pub(crate) batch: Vec<f64>,
    /// Depth-indexed DP rows (DTW / SED) or prefix sums (Euclidean) for
    /// the prefix-resumable table scorers.
    pub(crate) stack: Vec<f64>,
    /// Per-depth row minima backing early-abandoned argmin scans.
    pub(crate) mins: Vec<f64>,
}

impl DistanceWorkspace {
    /// An empty workspace; buffers are grown lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fills the two index buffers with the numeric view of `a` and `b`
    /// (the allocation-free counterpart of `SymbolSeq::as_indices`).
    pub(crate) fn load_indices(&mut self, a: &[Symbol], b: &[Symbol]) {
        self.ia.clear();
        self.ia.extend(a.iter().map(|s| s.index() as f64));
        self.ib.clear();
        self.ib.extend(b.iter().map(|s| s.index() as f64));
    }

    /// Fills only the own-sequence index buffer (table scorers read the
    /// candidate symbols straight out of the packed table).
    pub(crate) fn load_own(&mut self, a: &[Symbol]) {
        self.ia.clear();
        self.ia.extend(a.iter().map(|s| s.index() as f64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privshape_timeseries::SymbolSeq;

    #[test]
    fn load_indices_matches_as_indices() {
        let a = SymbolSeq::parse("acb").unwrap();
        let b = SymbolSeq::parse("za").unwrap();
        let mut ws = DistanceWorkspace::new();
        ws.load_indices(a.symbols(), b.symbols());
        assert_eq!(ws.ia, a.as_indices());
        assert_eq!(ws.ib, b.as_indices());
        // Reuse with shorter inputs truncates, never leaves stale tails.
        ws.load_indices(b.symbols(), &[]);
        assert_eq!(ws.ia, b.as_indices());
        assert!(ws.ib.is_empty());
    }
}
