//! String edit distance (Levenshtein) — the paper's SED metric, used as the
//! default for the Trace classification task (§V-B2).

use privshape_timeseries::Symbol;

/// Unit-cost edit distance (insert / delete / substitute) between two symbol
/// slices. `O(n·m)` time, `O(min(n, m))` memory.
pub fn sed(a: &[Symbol], b: &[Symbol]) -> f64 {
    // Keep the shorter sequence as the DP row.
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len() as f64;
    }

    let m = short.len();
    let mut row: Vec<usize> = (0..=m).collect();
    for (i, &x) in long.iter().enumerate() {
        let mut diag = row[0]; // row[i-1][0]
        row[0] = i + 1;
        for j in 0..m {
            let sub = diag + usize::from(x != short[j]);
            let del = row[j] + 1; // deletion from `long`
            let ins = row[j + 1] + 1; // insertion into `long`
            diag = row[j + 1];
            row[j + 1] = sub.min(del).min(ins);
        }
    }
    row[m] as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use privshape_timeseries::SymbolSeq;

    fn d(a: &str, b: &str) -> f64 {
        sed(
            SymbolSeq::parse(a).unwrap().symbols(),
            SymbolSeq::parse(b).unwrap().symbols(),
        )
    }

    #[test]
    fn classic_cases() {
        assert_eq!(d("kitten", "sitting"), 3.0);
        assert_eq!(d("abc", "abc"), 0.0);
        assert_eq!(d("", "abc"), 3.0);
        assert_eq!(d("abc", ""), 3.0);
        assert_eq!(d("", ""), 0.0);
        assert_eq!(d("ab", "ba"), 2.0);
        assert_eq!(d("acba", "aba"), 1.0);
    }

    #[test]
    fn symmetric() {
        assert_eq!(d("acbd", "bd"), d("bd", "acbd"));
    }

    #[test]
    fn bounded_by_longer_length() {
        assert!(d("abcde", "z") <= 5.0);
        assert_eq!(d("aaaa", "bbbb"), 4.0);
    }

    #[test]
    fn single_substitution_and_indel() {
        assert_eq!(d("abc", "axc"), 1.0);
        assert_eq!(d("abc", "abcd"), 1.0);
        assert_eq!(d("abc", "bc"), 1.0);
    }

    #[test]
    fn triangle_inequality_on_samples() {
        let seqs = ["acba", "aba", "abca", "ca", "bacb"];
        for x in seqs {
            for y in seqs {
                for z in seqs {
                    assert!(d(x, z) <= d(x, y) + d(y, z) + 1e-12, "{x} {y} {z}");
                }
            }
        }
    }
}
