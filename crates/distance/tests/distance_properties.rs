//! Property tests for the allocation-free scoring path: a workspace that
//! is reused across arbitrary call sequences must always return exactly
//! what the allocating path returns, for every distance kind.

use privshape_distance::{DistanceKind, DistanceWorkspace};
use privshape_timeseries::{Symbol, SymbolSeq};
use proptest::prelude::*;

fn seq_strategy() -> impl Strategy<Value = SymbolSeq> {
    prop::collection::vec(0u8..6, 0..24)
        .prop_map(|v| SymbolSeq::from_symbols(v.into_iter().map(Symbol::from_index).collect()))
}

/// Exact equality that also accepts two infinities (empty-input cases).
fn same(a: f64, b: f64) -> bool {
    a == b || (a.is_infinite() && b.is_infinite() && a.signum() == b.signum())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// One workspace, reused across every kind and pair in the batch, is
    /// bit-identical to a fresh allocating `dist` per pair — i.e. no state
    /// leaks between calls, lengths may shrink and grow freely.
    #[test]
    fn workspace_equals_allocating_for_all_kinds(
        pairs in prop::collection::vec((seq_strategy(), seq_strategy()), 1..12),
    ) {
        let mut ws = DistanceWorkspace::new();
        for kind in DistanceKind::ALL {
            for (a, b) in &pairs {
                let fast = kind.dist_with(&mut ws, a.symbols(), b.symbols());
                let slow = kind.dist(a, b);
                prop_assert!(same(fast, slow), "{kind} on {a} vs {b}: {fast} != {slow}");
            }
        }
    }

    /// The batched entry point equals the per-pair entry point, row for
    /// row, and reports exactly one distance per candidate.
    #[test]
    fn batch_equals_pairwise(
        own in seq_strategy(),
        candidates in prop::collection::vec(seq_strategy(), 0..10),
    ) {
        let mut ws = DistanceWorkspace::new();
        for kind in DistanceKind::ALL {
            let rows: Vec<&[Symbol]> = candidates.iter().map(|c| c.symbols()).collect();
            let batch = kind
                .dist_batch_with(&mut ws, own.symbols(), rows.iter().copied())
                .to_vec();
            prop_assert_eq!(batch.len(), candidates.len());
            for (b, c) in batch.iter().zip(&candidates) {
                let pairwise = kind.dist(&own, c);
                prop_assert!(same(*b, pairwise), "{} on {} vs {}", kind, own, c);
            }
        }
    }
}
