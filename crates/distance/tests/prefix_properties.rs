//! Property tests for the prefix-resumable table scorers: resuming shared
//! DP state across candidates must be a pure optimization — bit-identical
//! distances and identical argmins versus the flat per-candidate path, for
//! every distance kind, on prefix-ordered *and* arbitrarily ordered tables.
//!
//! Built with `--features simd`, `dist_batch_table` routes DTW/SED through
//! the candidate-parallel lane kernels and `argmin_table` screens rows with
//! the envelope lower bounds, so the same assertions below also pin
//! lanes-vs-scalar bit-identity and bound admissibility. The sibling-run
//! test targets the lane path specifically: explicit sibling groups of
//! every size from 1 up past the lane width, trie-ordered and shuffled.

use privshape_distance::{DistanceKind, DistanceWorkspace, DtwEnvelopeBound, SedEnvelopeBound};
use privshape_timeseries::{CandidateTable, Symbol, SymbolSeq};
use proptest::prelude::*;

fn seq_strategy() -> impl Strategy<Value = SymbolSeq> {
    // A small alphabet over moderately long rows makes shared prefixes
    // (and therefore real DP-state reuse) common rather than accidental.
    prop::collection::vec(0u8..4, 0..16)
        .prop_map(|v| SymbolSeq::from_symbols(v.into_iter().map(Symbol::from_index).collect()))
}

fn table_of(rows: &[SymbolSeq]) -> CandidateTable {
    let mut t = CandidateTable::new();
    for row in rows {
        t.push_seq(row);
    }
    t
}

/// Lexicographically sorted rows — the maximal-prefix-sharing order, the
/// shape of a trie level in creation order.
fn trie_ordered(rows: &[SymbolSeq]) -> Vec<SymbolSeq> {
    let mut sorted = rows.to_vec();
    sorted.sort_by(|a, b| a.symbols().cmp(b.symbols()));
    sorted
}

/// Exact equality that also accepts two same-signed infinities.
fn same(a: f64, b: f64) -> bool {
    a == b || (a.is_infinite() && b.is_infinite() && a.signum() == b.signum())
}

/// Sibling-group rows: each group is a shared prefix plus 1..=5 children
/// differing only in their final symbol (duplicates allowed) — exactly the
/// shape the lane kernels batch, with ragged tails at every size from a
/// single row up past the 4-wide lanes.
fn sibling_rows_strategy() -> impl Strategy<Value = Vec<SymbolSeq>> {
    prop::collection::vec(
        (
            prop::collection::vec(0u8..4, 0..10),
            prop::collection::vec(0u8..4, 1..6),
        ),
        1..6,
    )
    .prop_map(|groups| {
        let mut rows = Vec::new();
        for (prefix, lasts) in groups {
            for last in lasts {
                let mut r = prefix.clone();
                r.push(last);
                rows.push(SymbolSeq::from_symbols(
                    r.into_iter().map(Symbol::from_index).collect(),
                ));
            }
        }
        rows
    })
}

/// Deterministic Fisher–Yates driven by an LCG on `seed` (the vendored
/// proptest has no shuffle combinator).
fn shuffled(rows: &[SymbolSeq], mut seed: u64) -> Vec<SymbolSeq> {
    let mut v = rows.to_vec();
    for i in (1..v.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The table batch scorer equals the flat allocating path bit for bit,
    /// row for row — whether or not the rows arrive in prefix order, and
    /// with one workspace reused across every kind and both orders.
    #[test]
    fn prefix_batch_is_bit_identical_to_flat(
        own in seq_strategy(),
        rows in prop::collection::vec(seq_strategy(), 0..14),
    ) {
        let mut ws = DistanceWorkspace::new();
        for ordered in [trie_ordered(&rows), rows.clone()] {
            let table = table_of(&ordered);
            for kind in DistanceKind::ALL {
                let batch = kind.dist_batch_table(&mut ws, own.symbols(), &table).to_vec();
                prop_assert_eq!(batch.len(), ordered.len());
                for (got, cand) in batch.iter().zip(&ordered) {
                    let want = kind.dist(&own, cand);
                    prop_assert!(
                        same(*got, want),
                        "{} on {} vs {}: {} != {}", kind, own, cand, got, want
                    );
                }
            }
        }
    }

    /// The LCP index survives arbitrary interleavings of pushes: it never
    /// exceeds either adjacent row length and always equals the true
    /// common prefix.
    #[test]
    fn lcp_index_is_exact_for_any_insertion_order(
        rows in prop::collection::vec(seq_strategy(), 1..14),
    ) {
        let table = table_of(&rows);
        prop_assert_eq!(table.lcp(0), 0);
        for i in 1..table.len() {
            let want = table
                .row(i - 1)
                .iter()
                .zip(table.row(i))
                .take_while(|(a, b)| a == b)
                .count();
            prop_assert_eq!(table.lcp(i), want);
            prop_assert!(table.lcp(i) <= table.row(i).len());
            prop_assert!(table.lcp(i) <= table.row(i - 1).len());
        }
    }

    /// Early-abandoned argmin returns exactly what a full scan folded with
    /// first-strict-minimum returns: same row index, same distance.
    #[test]
    fn early_abandon_argmin_equals_full_scan(
        own in seq_strategy(),
        rows in prop::collection::vec(seq_strategy(), 1..14),
    ) {
        let mut ws = DistanceWorkspace::new();
        for ordered in [trie_ordered(&rows), rows.clone()] {
            let table = table_of(&ordered);
            for kind in DistanceKind::ALL {
                let mut want = (0usize, f64::INFINITY);
                for (i, cand) in ordered.iter().enumerate() {
                    let d = kind.dist(&own, cand);
                    if d < want.1 {
                        want = (i, d);
                    }
                }
                let got = kind
                    .argmin_table(&mut ws, own.symbols(), &table)
                    .expect("non-empty table");
                prop_assert_eq!(got.0, want.0, "{} on {}", kind, own);
                prop_assert!(
                    same(got.1, want.1),
                    "{} on {}: {} != {}", kind, own, got.1, want.1
                );
            }
        }
    }

    /// Sibling-run tables — the exact shape the lane kernels batch, with
    /// run lengths straddling the lane width — score bit-identically to
    /// the flat scalar path, trie-ordered and shuffled, with one workspace
    /// reused throughout. Under `--features simd` every multi-row run in
    /// the trie-ordered table goes through the f64x4 kernels (ragged tails
    /// included); without the feature this pins the same scalar reference
    /// the kernels are held to.
    #[test]
    fn lane_batches_are_bit_identical_on_sibling_runs(
        own in seq_strategy(),
        rows in sibling_rows_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let mut ws = DistanceWorkspace::new();
        for ordered in [trie_ordered(&rows), rows.clone(), shuffled(&rows, seed)] {
            let table = table_of(&ordered);
            for kind in [DistanceKind::Dtw, DistanceKind::Sed] {
                let batch = kind.dist_batch_table(&mut ws, own.symbols(), &table).to_vec();
                for (got, cand) in batch.iter().zip(&ordered) {
                    let want = kind.dist(&own, cand);
                    prop_assert!(
                        same(*got, want),
                        "{} on {} vs {}: {} != {}", kind, own, cand, got, want
                    );
                }
            }
        }
    }

    /// The envelope lower bounds are admissible: never above the true
    /// distance, for every row of any table. (Admissibility is exactly
    /// what makes the argmin's strict `bound > best` skip lossless.)
    #[test]
    fn envelope_bounds_never_exceed_true_distances(
        own in seq_strategy(),
        rows in prop::collection::vec(seq_strategy(), 1..14),
    ) {
        let table = table_of(&rows);
        let dtw_lb = DtwEnvelopeBound::new(&own.as_indices());
        let sed_lb = SedEnvelopeBound::new(own.symbols());
        for (i, cand) in rows.iter().enumerate() {
            if let Some((lo, hi)) = table.envelope(i) {
                let d = DistanceKind::Dtw.dist(&own, cand);
                let b = dtw_lb.bound(lo, hi);
                prop_assert!(b <= d, "dtw {} vs {}: bound {} > {}", own, cand, b, d);
            }
            let d = DistanceKind::Sed.dist(&own, cand);
            let b = sed_lb.bound(cand.len(), table.row_mask(i));
            prop_assert!(b <= d, "sed {} vs {}: bound {} > {}", own, cand, b, d);
        }
    }
}
