//! Property tests for the prefix-resumable table scorers: resuming shared
//! DP state across candidates must be a pure optimization — bit-identical
//! distances and identical argmins versus the flat per-candidate path, for
//! every distance kind, on prefix-ordered *and* arbitrarily ordered tables.

use privshape_distance::{DistanceKind, DistanceWorkspace};
use privshape_timeseries::{CandidateTable, Symbol, SymbolSeq};
use proptest::prelude::*;

fn seq_strategy() -> impl Strategy<Value = SymbolSeq> {
    // A small alphabet over moderately long rows makes shared prefixes
    // (and therefore real DP-state reuse) common rather than accidental.
    prop::collection::vec(0u8..4, 0..16)
        .prop_map(|v| SymbolSeq::from_symbols(v.into_iter().map(Symbol::from_index).collect()))
}

fn table_of(rows: &[SymbolSeq]) -> CandidateTable {
    let mut t = CandidateTable::new();
    for row in rows {
        t.push_seq(row);
    }
    t
}

/// Lexicographically sorted rows — the maximal-prefix-sharing order, the
/// shape of a trie level in creation order.
fn trie_ordered(rows: &[SymbolSeq]) -> Vec<SymbolSeq> {
    let mut sorted = rows.to_vec();
    sorted.sort_by(|a, b| a.symbols().cmp(b.symbols()));
    sorted
}

/// Exact equality that also accepts two same-signed infinities.
fn same(a: f64, b: f64) -> bool {
    a == b || (a.is_infinite() && b.is_infinite() && a.signum() == b.signum())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The table batch scorer equals the flat allocating path bit for bit,
    /// row for row — whether or not the rows arrive in prefix order, and
    /// with one workspace reused across every kind and both orders.
    #[test]
    fn prefix_batch_is_bit_identical_to_flat(
        own in seq_strategy(),
        rows in prop::collection::vec(seq_strategy(), 0..14),
    ) {
        let mut ws = DistanceWorkspace::new();
        for ordered in [trie_ordered(&rows), rows.clone()] {
            let table = table_of(&ordered);
            for kind in DistanceKind::ALL {
                let batch = kind.dist_batch_table(&mut ws, own.symbols(), &table).to_vec();
                prop_assert_eq!(batch.len(), ordered.len());
                for (got, cand) in batch.iter().zip(&ordered) {
                    let want = kind.dist(&own, cand);
                    prop_assert!(
                        same(*got, want),
                        "{} on {} vs {}: {} != {}", kind, own, cand, got, want
                    );
                }
            }
        }
    }

    /// The LCP index survives arbitrary interleavings of pushes: it never
    /// exceeds either adjacent row length and always equals the true
    /// common prefix.
    #[test]
    fn lcp_index_is_exact_for_any_insertion_order(
        rows in prop::collection::vec(seq_strategy(), 1..14),
    ) {
        let table = table_of(&rows);
        prop_assert_eq!(table.lcp(0), 0);
        for i in 1..table.len() {
            let want = table
                .row(i - 1)
                .iter()
                .zip(table.row(i))
                .take_while(|(a, b)| a == b)
                .count();
            prop_assert_eq!(table.lcp(i), want);
            prop_assert!(table.lcp(i) <= table.row(i).len());
            prop_assert!(table.lcp(i) <= table.row(i - 1).len());
        }
    }

    /// Early-abandoned argmin returns exactly what a full scan folded with
    /// first-strict-minimum returns: same row index, same distance.
    #[test]
    fn early_abandon_argmin_equals_full_scan(
        own in seq_strategy(),
        rows in prop::collection::vec(seq_strategy(), 1..14),
    ) {
        let mut ws = DistanceWorkspace::new();
        for ordered in [trie_ordered(&rows), rows.clone()] {
            let table = table_of(&ordered);
            for kind in DistanceKind::ALL {
                let mut want = (0usize, f64::INFINITY);
                for (i, cand) in ordered.iter().enumerate() {
                    let d = kind.dist(&own, cand);
                    if d < want.1 {
                        want = (i, d);
                    }
                }
                let got = kind
                    .argmin_table(&mut ws, own.symbols(), &table)
                    .expect("non-empty table");
                prop_assert_eq!(got.0, want.0, "{} on {}", kind, own);
                prop_assert!(
                    same(got.1, want.1),
                    "{} on {}: {} != {}", kind, own, got.1, want.1
                );
            }
        }
    }
}
