//! Laplace sampling — the classic value-perturbation primitive, provided for
//! ablations against the Piecewise Mechanism.

use rand::{Rng, RngExt};

/// Draws one sample from `Laplace(0, scale)` via inverse-CDF sampling.
///
/// For a query of sensitivity `Δ`, adding `laplace_noise(rng, Δ/ε)` gives
/// ε-DP.
///
/// # Panics
///
/// Panics if `scale` is not finite and positive.
pub fn laplace_noise<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    assert!(
        scale.is_finite() && scale > 0.0,
        "Laplace scale must be > 0, got {scale}"
    );
    // u uniform on (-1/2, 1/2]; inverse CDF: -b·sgn(u)·ln(1 − 2|u|).
    let u: f64 = rng.random::<f64>() - 0.5;
    let sign = if u >= 0.0 { 1.0 } else { -1.0 };
    let inner = (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE);
    -scale * sign * inner.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn mean_is_zero_and_spread_scales() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let n = 100_000;
        let b = 2.0;
        let samples: Vec<f64> = (0..n).map(|_| laplace_noise(&mut rng, b)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        // Var of Laplace(b) is 2b².
        let var = samples.iter().map(|x| x * x).sum::<f64>() / n as f64;
        assert!((var - 2.0 * b * b).abs() < 0.3, "var={var}");
    }

    #[test]
    fn median_absolute_deviation_matches_ln2_times_scale() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let b = 1.0;
        let mut abs: Vec<f64> = (0..50_000)
            .map(|_| laplace_noise(&mut rng, b).abs())
            .collect();
        abs.sort_by(|a, c| a.partial_cmp(c).unwrap());
        let median = abs[abs.len() / 2];
        assert!(
            (median - b * std::f64::consts::LN_2).abs() < 0.02,
            "median={median}"
        );
    }

    #[test]
    #[should_panic(expected = "scale must be > 0")]
    fn rejects_bad_scale() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        laplace_noise(&mut rng, 0.0);
    }
}
