use std::fmt;

/// Convenience alias for this crate.
pub type Result<T> = std::result::Result<T, LdpError>;

/// Errors produced by the LDP substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum LdpError {
    /// ε must be finite and strictly positive.
    InvalidEpsilon(f64),
    /// Frequency oracles need a domain of at least two items.
    InvalidDomain(usize),
    /// The value to perturb was outside the declared domain.
    ValueOutOfDomain {
        /// The out-of-domain value.
        value: usize,
        /// Size of the declared domain.
        domain: usize,
    },
    /// A numeric input was outside the supported range.
    ValueOutOfRange {
        /// The offending input.
        value: f64,
        /// Lower bound of the supported range.
        lo: f64,
        /// Upper bound of the supported range.
        hi: f64,
    },
    /// The candidate list for EM selection was empty.
    NoCandidates,
    /// A report decoded from an untrusted source violated a structural
    /// invariant (e.g. OUE set bits not strictly ascending).
    MalformedReport(String),
    /// A cumulative budget ledger refused a charge that would overdraw
    /// the user-level budget (see
    /// [`theory::amplification::BudgetLedger`](crate::theory::amplification::BudgetLedger)).
    BudgetExhausted {
        /// Amplified ε the refused charge asked for.
        requested: f64,
        /// Budget that was still unspent when the charge was refused.
        remaining: f64,
    },
}

impl fmt::Display for LdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdpError::InvalidEpsilon(e) => {
                write!(f, "privacy budget must be finite and > 0, got {e}")
            }
            LdpError::InvalidDomain(d) => write!(f, "domain must have >= 2 items, got {d}"),
            LdpError::ValueOutOfDomain { value, domain } => {
                write!(f, "value {value} outside domain of size {domain}")
            }
            LdpError::ValueOutOfRange { value, lo, hi } => {
                write!(f, "value {value} outside [{lo}, {hi}]")
            }
            LdpError::NoCandidates => write!(f, "exponential mechanism needs >= 1 candidate"),
            LdpError::MalformedReport(msg) => write!(f, "malformed report: {msg}"),
            LdpError::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "budget exhausted: charge of ε={requested} exceeds remaining ε={remaining}"
            ),
        }
    }
}

impl std::error::Error for LdpError {}

/// A validated privacy budget ε > 0.
///
/// Composition helpers encode the two theorems the paper's privacy analysis
/// uses: sequential composition (budgets add when the *same* data passes
/// through several mechanisms) and parallel composition (disjoint user
/// groups each enjoy the full budget — the heart of PrivShape's
/// user-allocation strategy in §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Creates a budget, rejecting non-finite and non-positive values.
    pub fn new(eps: f64) -> Result<Self> {
        if eps.is_finite() && eps > 0.0 {
            Ok(Epsilon(eps))
        } else {
            Err(LdpError::InvalidEpsilon(eps))
        }
    }

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// `e^ε`, the likelihood-ratio bound of Def. 1.
    pub fn exp(self) -> f64 {
        self.0.exp()
    }

    /// Sequential composition: running `self` then `other` on the same data
    /// consumes `ε₁ + ε₂`.
    pub fn sequential(self, other: Epsilon) -> Epsilon {
        Epsilon(self.0 + other.0)
    }

    /// Parallel composition: mechanisms on disjoint data consume
    /// `max(ε₁, ε₂)`.
    pub fn parallel(self, other: Epsilon) -> Epsilon {
        Epsilon(self.0.max(other.0))
    }

    /// A fraction of this budget (for mechanisms that split ε internally,
    /// like PatternLDP's per-point allocation).
    pub fn fraction(self, frac: f64) -> Result<Epsilon> {
        Epsilon::new(self.0 * frac)
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

/// The three privacy granularities for time-series release (§II-B).
///
/// Purely descriptive: mechanisms in this workspace are all analyzed at
/// [`PrivacyLevel::User`], the strongest level; the enum exists so reports
/// and docs can state the guarantee explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivacyLevel {
    /// Protects a single element of the series.
    Event,
    /// Protects any `w` consecutive elements.
    WEvent(usize),
    /// Protects the entire series — neighboring series may differ in *every*
    /// element (Def. 2).
    User,
}

impl PrivacyLevel {
    /// Whether `self` is at least as strong as `other` (user ≥ ω-event ≥
    /// event; larger windows are stronger within ω-event).
    pub fn at_least(self, other: PrivacyLevel) -> bool {
        use PrivacyLevel::*;
        match (self, other) {
            (User, _) => true,
            (WEvent(_), User) => false,
            (WEvent(a), WEvent(b)) => a >= b,
            (WEvent(_), Event) => true,
            (Event, Event) => true,
            (Event, _) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(Epsilon::new(1.0).is_ok());
        assert!(Epsilon::new(0.0).is_err());
        assert!(Epsilon::new(-2.0).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
    }

    #[test]
    fn composition_rules() {
        let a = Epsilon::new(1.0).unwrap();
        let b = Epsilon::new(2.5).unwrap();
        assert_eq!(a.sequential(b).value(), 3.5);
        assert_eq!(a.parallel(b).value(), 2.5);
        assert_eq!(b.fraction(0.4).unwrap().value(), 1.0);
        assert!(b.fraction(0.0).is_err());
    }

    #[test]
    fn privacy_level_ordering() {
        use PrivacyLevel::*;
        assert!(User.at_least(Event));
        assert!(User.at_least(WEvent(100)));
        assert!(WEvent(10).at_least(WEvent(5)));
        assert!(!WEvent(5).at_least(WEvent(10)));
        assert!(!Event.at_least(WEvent(1)));
        assert!(WEvent(1).at_least(Event));
        assert!(!WEvent(1_000_000).at_least(User));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Epsilon::new(4.0).unwrap().to_string(), "ε=4");
        let err = Epsilon::new(-1.0).unwrap_err();
        assert!(err.to_string().contains("finite"));
        let exhausted = LdpError::BudgetExhausted {
            requested: 2.5,
            remaining: 1.25,
        }
        .to_string();
        assert!(exhausted.contains("2.5") && exhausted.contains("1.25"));
    }
}
