//! Optimized Local Hashing (Wang et al., USENIX Security 2017) — the third
//! frequency oracle of the family the paper draws on ([27]).
//!
//! OLH hashes the value into a small domain `g = ⌈e^ε⌉ + 1` with a
//! per-user public hash seed, then applies GRR over the hashed domain.
//! Its estimator variance matches OUE's (domain-independent) while each
//! report is a single integer plus a seed — communication-optimal for
//! large domains. Provided for the frequency-oracle ablation
//! (`ablation_oracles` in the bench crate): the length and sub-shape
//! domains in PrivShape are small enough that GRR wins, and the ablation
//! makes that design choice measurable.

use crate::budget::{Epsilon, LdpError, Result};
use rand::{Rng, RngExt};

/// One OLH report: the user's public hash seed and the GRR-perturbed hash
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OlhReport {
    /// Public per-user hash seed.
    pub seed: u64,
    /// Perturbed hash bucket in `[0, g)`.
    pub value: usize,
}

/// The OLH mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct Olh {
    eps: Epsilon,
    g: usize,
    p: f64,
}

impl Olh {
    /// Creates the mechanism with the variance-optimal hash range
    /// `g = ⌈e^ε⌉ + 1` (at least 2).
    pub fn new(eps: Epsilon) -> Self {
        let g = ((eps.exp().round() as usize) + 1).max(2);
        let p = eps.exp() / (eps.exp() + g as f64 - 1.0);
        Self { eps, g, p }
    }

    /// Budget this instance satisfies.
    pub fn epsilon(&self) -> Epsilon {
        self.eps
    }

    /// Hash range `g`.
    pub fn g(&self) -> usize {
        self.g
    }

    /// Truth-retention probability of the inner GRR.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The public hash: bucket of `value` under `seed`.
    pub fn hash(&self, seed: u64, value: usize) -> usize {
        (mix(seed ^ mix(value as u64 ^ 0x6A09_E667_F3BC_C908)) % self.g as u64) as usize
    }

    /// Perturbs `value`: draws a fresh public seed, hashes, and applies GRR
    /// over the hash range.
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R, value: usize) -> OlhReport {
        let seed: u64 = rng.random();
        let h = self.hash(seed, value);
        let reported = if rng.random_bool(self.p) {
            h
        } else {
            let mut other = rng.random_range(0..self.g - 1);
            if other >= h {
                other += 1;
            }
            other
        };
        OlhReport {
            seed,
            value: reported,
        }
    }
}

/// SplitMix64 finalizer (shared convention across the workspace).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Server-side OLH aggregator over a finite domain `{0, …, d−1}`.
///
/// Support counting is `O(d)` per report; fine for the domain sizes in
/// this workspace (≤ a few hundred).
#[derive(Debug, Clone, PartialEq)]
pub struct OlhAggregator {
    olh: Olh,
    support: Vec<u64>,
    total: u64,
}

impl OlhAggregator {
    /// Creates the aggregator for a domain of `domain ≥ 2` values.
    pub fn new(olh: Olh, domain: usize) -> Result<Self> {
        if domain < 2 {
            return Err(LdpError::InvalidDomain(domain));
        }
        Ok(Self {
            olh,
            support: vec![0; domain],
            total: 0,
        })
    }

    /// Ingests one report: every domain value whose hash under the
    /// report's seed equals the reported bucket gains support.
    pub fn add(&mut self, report: &OlhReport) {
        for (v, support) in self.support.iter_mut().enumerate() {
            if self.olh.hash(report.seed, v) == report.value {
                *support += 1;
            }
        }
        self.total += 1;
    }

    /// Number of reports ingested.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Size of the value domain the aggregator estimates over.
    pub fn domain(&self) -> usize {
        self.support.len()
    }

    /// The mechanism this aggregator expects reports from.
    pub fn olh(&self) -> &Olh {
        &self.olh
    }

    /// Folds another aggregator's support counts into this one. Support is
    /// a plain integer sum over the same hash family, so merging is
    /// associative and commutative — shards can aggregate independently
    /// and combine in any order.
    ///
    /// # Panics
    ///
    /// Panics when the two aggregators were built for different domains or
    /// different hash ranges (merging them would be meaningless).
    pub fn merge(&mut self, other: &OlhAggregator) {
        assert_eq!(
            self.support.len(),
            other.support.len(),
            "cannot merge OLH aggregators over different domains"
        );
        assert_eq!(
            self.olh.g, other.olh.g,
            "cannot merge OLH aggregators over different hash ranges"
        );
        debug_assert!(self.olh.p == other.olh.p);
        for (mine, theirs) in self.support.iter_mut().zip(&other.support) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Raw per-value support counts — the full dynamic state of the
    /// aggregator. Exposed for snapshot serialization.
    pub fn support(&self) -> &[u64] {
        &self.support
    }

    /// Overwrites the dynamic state from snapshotted support counts.
    ///
    /// Validated against the OLH structural invariants: the support vector
    /// must match this aggregator's domain and no value can be supported by
    /// more reports than were ingested.
    pub fn restore_support(&mut self, support: &[u64], total: u64) -> Result<()> {
        if support.len() != self.support.len() {
            return Err(LdpError::MalformedReport(format!(
                "OLH snapshot domain {} != aggregator domain {}",
                support.len(),
                self.support.len()
            )));
        }
        if let Some(&s) = support.iter().find(|&&s| s > total) {
            return Err(LdpError::MalformedReport(format!(
                "OLH snapshot support {s} exceeds {total} reports"
            )));
        }
        self.support.copy_from_slice(support);
        self.total = total;
        Ok(())
    }

    /// Unbiased count estimate:
    /// `ĉ(v) = (support(v) − n/g) / (p − 1/g)`.
    pub fn estimate(&self, v: usize) -> f64 {
        let n = self.total as f64;
        let g = self.olh.g as f64;
        (self.support[v] as f64 - n / g) / (self.olh.p - 1.0 / g)
    }

    /// Estimates for the full domain.
    pub fn estimates(&self) -> Vec<f64> {
        (0..self.support.len()).map(|v| self.estimate(v)).collect()
    }

    /// Indices of the `m` largest estimates, descending (ties toward the
    /// smaller index).
    pub fn top_m(&self, m: usize) -> Vec<usize> {
        let est = self.estimates();
        let mut idx: Vec<usize> = (0..est.len()).collect();
        idx.sort_by(|&a, &b| est[b].partial_cmp(&est[a]).unwrap().then(a.cmp(&b)));
        idx.truncate(m);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn hash_range_follows_budget() {
        assert_eq!(Olh::new(eps(0.1)).g(), 2);
        assert_eq!(Olh::new(eps(1.0)).g(), 4); // ⌈e⌉ + 1 = 4 (e ≈ 2.72 rounds to 3)
        assert!(Olh::new(eps(4.0)).g() > 40);
    }

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let olh = Olh::new(eps(1.0));
        for v in 0..100 {
            let h = olh.hash(42, v);
            assert_eq!(h, olh.hash(42, v));
            assert!(h < olh.g());
        }
    }

    #[test]
    fn reports_are_valid() {
        let olh = Olh::new(eps(2.0));
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        for v in 0..20 {
            let r = olh.perturb(&mut rng, v);
            assert!(r.value < olh.g());
        }
    }

    #[test]
    fn estimator_recovers_skewed_distribution() {
        let olh = Olh::new(eps(1.5));
        let mut agg = OlhAggregator::new(olh.clone(), 20).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let n = 60_000;
        for i in 0..n {
            let v = if i % 10 < 6 { 3 } else { 11 };
            agg.add(&olh.perturb(&mut rng, v));
        }
        assert!(
            (agg.estimate(3) - 0.6 * n as f64).abs() < 0.05 * n as f64,
            "{}",
            agg.estimate(3)
        );
        assert!((agg.estimate(11) - 0.4 * n as f64).abs() < 0.05 * n as f64);
        assert!(agg.estimate(0).abs() < 0.05 * n as f64);
        assert_eq!(agg.top_m(2), vec![3, 11]);
    }

    #[test]
    fn variance_is_domain_independent_like_oue() {
        // Empirical check: zero-frequency estimate spread on domain 50 is
        // comparable to the OUE theory value, far below GRR's at this size.
        let e = 1.0;
        let olh = Olh::new(eps(e));
        let mut agg = OlhAggregator::new(olh.clone(), 50).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let n = 20_000;
        for _ in 0..n {
            agg.add(&olh.perturb(&mut rng, 0)); // everyone holds 0
        }
        // Empirical variance of the 49 zero-frequency estimates.
        let zeros: Vec<f64> = (1..50).map(|v| agg.estimate(v)).collect();
        let mean = zeros.iter().sum::<f64>() / zeros.len() as f64;
        let var = zeros.iter().map(|z| (z - mean) * (z - mean)).sum::<f64>() / zeros.len() as f64;
        let oue_var = crate::theory::oue_variance(e, n as f64);
        let grr_var = crate::theory::grr_variance(50, e, n as f64);
        assert!(
            var < grr_var / 2.0,
            "var {var:.0} should be far below GRR {grr_var:.0}"
        );
        assert!(
            var < oue_var * 3.0,
            "var {var:.0} should be near OUE {oue_var:.0}"
        );
    }

    #[test]
    fn rejects_degenerate_domain() {
        assert!(OlhAggregator::new(Olh::new(eps(1.0)), 1).is_err());
    }

    #[test]
    fn merged_shards_equal_single_aggregator() {
        let olh = Olh::new(eps(1.5));
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let reports: Vec<OlhReport> = (0..600).map(|i| olh.perturb(&mut rng, i % 7)).collect();

        let mut whole = OlhAggregator::new(olh.clone(), 9).unwrap();
        for r in &reports {
            whole.add(r);
        }

        let mut shards: Vec<OlhAggregator> = (0..3)
            .map(|_| OlhAggregator::new(olh.clone(), 9).unwrap())
            .collect();
        for (i, r) in reports.iter().enumerate() {
            shards[i % 3].add(r);
        }
        // Fold in a non-sequential order; counts are integers, so the
        // result is exact, not approximately equal.
        let mut merged = shards[2].clone();
        merged.merge(&shards[0]);
        merged.merge(&shards[1]);
        assert_eq!(merged, whole);
        assert_eq!(merged.total(), 600);
    }

    #[test]
    #[should_panic(expected = "different domains")]
    fn merge_rejects_mismatched_domains() {
        let olh = Olh::new(eps(1.0));
        let mut a = OlhAggregator::new(olh.clone(), 4).unwrap();
        let b = OlhAggregator::new(olh, 5).unwrap();
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "different hash ranges")]
    fn merge_rejects_mismatched_hash_ranges() {
        let mut a = OlhAggregator::new(Olh::new(eps(1.0)), 4).unwrap();
        let b = OlhAggregator::new(Olh::new(eps(3.0)), 4).unwrap();
        a.merge(&b);
    }
}
