//! The Exponential Mechanism (McSherry & Talwar 2007) over scored
//! candidates — Eq. (2) of the paper.
//!
//! Each user selects among the server's candidate shapes with probability
//! `Pr[Ψ(x) = F_j] ∝ exp(ε · S(x, F_j) / (2Δ))`. With the score normalized
//! to `[0, 1]` the sensitivity is `Δ = 1`.

use crate::budget::{Epsilon, LdpError, Result};
use rand::{Rng, RngExt};

/// Exponential Mechanism with a fixed budget and sensitivity.
#[derive(Debug, Clone, Copy)]
pub struct ExpMech {
    eps: Epsilon,
    sensitivity: f64,
}

impl ExpMech {
    /// Mechanism with sensitivity 1 (scores normalized to `[0, 1]`).
    pub fn new(eps: Epsilon) -> Self {
        Self {
            eps,
            sensitivity: 1.0,
        }
    }

    /// Mechanism with explicit sensitivity `Δ > 0`.
    pub fn with_sensitivity(eps: Epsilon, sensitivity: f64) -> Result<Self> {
        if !(sensitivity.is_finite() && sensitivity > 0.0) {
            return Err(LdpError::ValueOutOfRange {
                value: sensitivity,
                lo: f64::MIN_POSITIVE,
                hi: f64::INFINITY,
            });
        }
        Ok(Self { eps, sensitivity })
    }

    /// Budget this instance satisfies.
    pub fn epsilon(&self) -> Epsilon {
        self.eps
    }

    /// Selection probabilities for a score vector (useful for tests and for
    /// the utility analysis of §IV-E).
    pub fn probabilities(&self, scores: &[f64]) -> Vec<f64> {
        let scale = self.eps.value() / (2.0 * self.sensitivity);
        // Subtract the max for numerical stability.
        let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = scores.iter().map(|&s| ((s - m) * scale).exp()).collect();
        let total: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / total).collect()
    }

    /// Samples a candidate index via the Gumbel-max trick:
    /// `argmax_j (scale · s_j + G_j)` with i.i.d. standard Gumbel `G_j` is
    /// distributed exactly as the EM softmax, without computing the
    /// normalizer.
    pub fn select<R: Rng + ?Sized>(&self, rng: &mut R, scores: &[f64]) -> Result<usize> {
        if scores.is_empty() {
            return Err(LdpError::NoCandidates);
        }
        let scale = self.eps.value() / (2.0 * self.sensitivity);
        let mut best = 0usize;
        let mut best_key = f64::NEG_INFINITY;
        for (j, &s) in scores.iter().enumerate() {
            // Standard Gumbel via inverse CDF; u ∈ (0, 1) is guaranteed by
            // sampling the open interval.
            let u: f64 = loop {
                let u = rng.random::<f64>();
                if u > 0.0 {
                    break u;
                }
            };
            let gumbel = -(-u.ln()).ln();
            let key = scale * s + gumbel;
            if key > best_key {
                best_key = key;
                best = j;
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn probabilities_normalize_and_order_by_score() {
        let em = ExpMech::new(eps(2.0));
        let p = em.probabilities(&[1.0, 0.5, 0.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1] && p[1] > p[2]);
    }

    #[test]
    fn probability_ratio_bounded_by_exp_eps() {
        // For scores in [0,1] and Δ=1 the max/min selection-probability
        // ratio is exp(ε·(s_max−s_min)/2) ≤ exp(ε/2) per input; across any
        // two neighboring inputs the EM guarantee composes to exp(ε).
        let e = 1.7;
        let em = ExpMech::new(eps(e));
        let p = em.probabilities(&[1.0, 0.0, 0.3]);
        let ratio = p[0] / p[1];
        assert!((ratio - (e / 2.0).exp()).abs() < 1e-9);
    }

    #[test]
    fn empirical_frequencies_match_probabilities() {
        let em = ExpMech::new(eps(3.0));
        let scores = [0.9, 0.2, 0.6, 0.6];
        let probs = em.probabilities(&scores);
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let n = 60_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[em.select(&mut rng, &scores).unwrap()] += 1;
        }
        for j in 0..4 {
            let freq = counts[j] as f64 / n as f64;
            assert!(
                (freq - probs[j]).abs() < 0.01,
                "j={j} freq={freq} p={}",
                probs[j]
            );
        }
    }

    #[test]
    fn empty_candidates_error() {
        let em = ExpMech::new(eps(1.0));
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        assert!(matches!(
            em.select(&mut rng, &[]),
            Err(LdpError::NoCandidates)
        ));
    }

    #[test]
    fn single_candidate_always_selected() {
        let em = ExpMech::new(eps(0.1));
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(em.select(&mut rng, &[0.4]).unwrap(), 0);
        }
    }

    #[test]
    fn custom_sensitivity_scales_sharpness() {
        let sharp = ExpMech::new(eps(4.0));
        let flat = ExpMech::with_sensitivity(eps(4.0), 10.0).unwrap();
        let ps = sharp.probabilities(&[1.0, 0.0]);
        let pf = flat.probabilities(&[1.0, 0.0]);
        assert!(ps[0] > pf[0]); // larger Δ flattens the distribution
        assert!(ExpMech::with_sensitivity(eps(1.0), 0.0).is_err());
        assert!(ExpMech::with_sensitivity(eps(1.0), f64::NAN).is_err());
    }

    #[test]
    fn huge_scores_do_not_overflow() {
        // The max-subtraction keeps exp() finite even for wild score scales.
        let em = ExpMech::with_sensitivity(eps(1000.0), 1.0).unwrap();
        let p = em.probabilities(&[1.0, 0.0]);
        assert!(p[0] > 0.999 && p[0].is_finite());
    }
}
