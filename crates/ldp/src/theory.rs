//! Closed-form estimator variances for the frequency oracles.
//!
//! These formulas (Wang et al. 2017) justify the paper's design choices:
//! GRR's variance grows linearly in the domain size `d`, so for the large
//! `c·k·L` refinement grid OUE — whose variance is domain-independent — is
//! the better oracle (§V-E). They also power sanity tests on the empirical
//! estimators.
//!
//! The [`amplification`] submodule carries the second body of theory this
//! workspace leans on: privacy amplification by subsampling and the
//! cumulative budget ledger of the continual extraction mode.

pub mod amplification;

/// Variance of the GRR unbiased count estimator for one item, with `n`
/// reports, domain `d`, budget `eps`, in the low-frequency regime
/// (`f ≈ 0`): `n · q(1−q) / (p−q)²`.
pub fn grr_variance(d: usize, eps: f64, n: f64) -> f64 {
    let e = eps.exp();
    let p = e / (e + d as f64 - 1.0);
    let q = 1.0 / (e + d as f64 - 1.0);
    n * q * (1.0 - q) / ((p - q) * (p - q))
}

/// Variance of the OUE unbiased count estimator in the same regime:
/// `n · 4e^ε / (e^ε − 1)²`, independent of the domain size.
pub fn oue_variance(eps: f64, n: f64) -> f64 {
    let e = eps.exp();
    n * 4.0 * e / ((e - 1.0) * (e - 1.0))
}

/// The domain size above which OUE's variance beats GRR's:
/// approximately `3e^ε + 2` (OUE wins for `d − 2 > 3e^ε`... the exact
/// crossover is where the two formulas intersect).
pub fn grr_oue_crossover(eps: f64) -> usize {
    // Solve grr_variance(d) = oue_variance numerically by scanning; domains
    // of interest here are small (≤ a few thousand).
    for d in 2..100_000 {
        if grr_variance(d, eps, 1.0) > oue_variance(eps, 1.0) {
            return d;
        }
    }
    100_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grr_variance_grows_with_domain() {
        let v2 = grr_variance(2, 1.0, 1000.0);
        let v100 = grr_variance(100, 1.0, 1000.0);
        assert!(v100 > v2 * 10.0);
    }

    #[test]
    fn variances_shrink_with_budget() {
        assert!(grr_variance(10, 4.0, 1.0) < grr_variance(10, 1.0, 1.0));
        assert!(oue_variance(4.0, 1.0) < oue_variance(1.0, 1.0));
    }

    #[test]
    fn crossover_is_near_3_exp_eps() {
        for &eps in &[0.5f64, 1.0, 2.0] {
            let cross = grr_oue_crossover(eps) as f64;
            let approx = 3.0 * eps.exp() + 2.0;
            assert!(
                (cross - approx).abs() <= approx * 0.3 + 3.0,
                "eps={eps}: {cross} vs {approx}"
            );
        }
    }

    #[test]
    fn binary_grr_matches_classic_rr_variance() {
        // For d = 2, GRR is Warner's randomized response:
        // var = e^ε/(e^ε−1)² per report.
        let eps = 1.3f64;
        let e = eps.exp();
        let want = e / ((e - 1.0) * (e - 1.0));
        assert!((grr_variance(2, eps, 1.0) - want).abs() < 1e-12);
    }
}
