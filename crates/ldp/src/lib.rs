//! Local differential privacy primitives for the PrivShape reproduction.
//!
//! Everything §II-B, §III-C and §V of the paper rely on:
//!
//! * [`Epsilon`] — validated privacy budgets with sequential/parallel
//!   composition helpers;
//! * [`Grr`] / [`GrrAggregator`] — Generalized Randomized Response with the
//!   standard unbiased frequency estimator (used for length estimation and
//!   sub-shape estimation);
//! * [`Oue`] / [`OueAggregator`] — Optimized Unary Encoding (used by the
//!   labeled two-level refinement in §V-E);
//! * [`ExpMech`] — the Exponential Mechanism over scored candidates
//!   (used for candidate selection, Eq. (2));
//! * [`PiecewiseMechanism`] — Wang et al.'s Piecewise Mechanism for bounded
//!   numeric values (used by the PatternLDP baseline);
//! * [`laplace_noise`] — Laplace sampling for value-perturbation ablations;
//! * [`theory`] — closed-form estimator variances used in tests and docs,
//!   plus [`theory::amplification`]: the subsampled-ε bound and the
//!   cumulative [`BudgetLedger`] the continual extraction mode spends
//!   against.
//!
//! All primitives take the RNG explicitly so simulations are deterministic.
//!
//! # Example
//!
//! ```
//! use privshape_ldp::{Epsilon, Grr, GrrAggregator};
//! use rand::SeedableRng;
//!
//! let eps = Epsilon::new(2.0).unwrap();
//! let grr = Grr::new(4, eps).unwrap();
//! let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(7);
//! let mut agg = GrrAggregator::new(&grr);
//! for _ in 0..1000 {
//!     agg.add(grr.perturb(&mut rng, 2)); // everyone holds item 2
//! }
//! let est = agg.estimates();
//! assert!(est[2] > 800.0); // unbiased estimate concentrates near 1000
//! ```

// Redundant with the workspace-level lint, but explicit: every public
// item in the privacy substrate must be documented.
#![warn(missing_docs)]

mod budget;
mod em;
mod grr;
mod laplace;
mod olh;
mod oue;
mod piecewise;
pub mod theory;

pub use budget::{Epsilon, LdpError, PrivacyLevel, Result};
pub use em::ExpMech;
pub use grr::{Grr, GrrAggregator};
pub use laplace::laplace_noise;
pub use olh::{Olh, OlhAggregator, OlhReport};
pub use oue::{Oue, OueAggregator, OueReport};
pub use piecewise::{PiecewiseAggregator, PiecewiseMechanism};
pub use theory::amplification::{amplified_epsilon, rate_for_amplified, BudgetLedger, EpochCharge};
