//! Optimized Unary Encoding (Wang et al., USENIX Security 2017).
//!
//! OUE perturbs a one-hot encoding bit-by-bit with asymmetric flip
//! probabilities (`p = 1/2` for the 1-bit, `q = 1/(e^ε + 1)` for 0-bits),
//! which minimizes estimator variance for large domains. The paper uses it
//! for the labeled two-level refinement where the domain is the `c·k`
//! candidates × `k` classes grid (§V-E).

use crate::budget::{Epsilon, LdpError, Result};
use rand::{Rng, RngExt};

/// One perturbed OUE report: the set bit positions of the noisy unary
/// vector. Sparse storage — with `q = 1/(e^ε+1)` the expected number of set
/// bits is `≈ d·q`, far below `d` for practical ε.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OueReport {
    set_bits: Vec<usize>,
}

impl OueReport {
    /// Positions reported as 1, ascending.
    pub fn set_bits(&self) -> &[usize] {
        &self.set_bits
    }

    /// Rebuilds a report from its set-bit positions — the decode side of a
    /// wire codec. The positions must be strictly ascending (the invariant
    /// [`Oue::perturb`] always produces); anything else is refused so a
    /// corrupted buffer can never forge a structurally invalid report.
    pub fn from_set_bits(set_bits: Vec<usize>) -> Result<Self> {
        if let Some(w) = set_bits.windows(2).find(|w| w[0] >= w[1]) {
            return Err(LdpError::MalformedReport(format!(
                "OUE set bits must be strictly ascending, got {} then {}",
                w[0], w[1]
            )));
        }
        Ok(Self { set_bits })
    }
}

/// The OUE mechanism over a domain of `d ≥ 2` items.
#[derive(Debug, Clone)]
pub struct Oue {
    domain: usize,
    eps: Epsilon,
    q: f64,
}

impl Oue {
    /// Truth-bit retention probability (fixed at 1/2 by the OUE optimum).
    pub const P: f64 = 0.5;

    /// Creates the mechanism.
    pub fn new(domain: usize, eps: Epsilon) -> Result<Self> {
        if domain < 2 {
            return Err(LdpError::InvalidDomain(domain));
        }
        Ok(Self {
            domain,
            eps,
            q: 1.0 / (eps.exp() + 1.0),
        })
    }

    /// Domain size `d`.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Budget this instance satisfies.
    pub fn epsilon(&self) -> Epsilon {
        self.eps
    }

    /// Zero-bit flip probability `q = 1/(e^ε + 1)`.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Perturbs the one-hot encoding of `value`.
    pub fn try_perturb<R: Rng + ?Sized>(&self, rng: &mut R, value: usize) -> Result<OueReport> {
        if value >= self.domain {
            return Err(LdpError::ValueOutOfDomain {
                value,
                domain: self.domain,
            });
        }
        let mut set_bits = Vec::new();
        for bit in 0..self.domain {
            let keep = if bit == value {
                rng.random_bool(Self::P)
            } else {
                rng.random_bool(self.q)
            };
            if keep {
                set_bits.push(bit);
            }
        }
        Ok(OueReport { set_bits })
    }

    /// Panicking variant of [`Oue::try_perturb`] for validated inner loops.
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R, value: usize) -> OueReport {
        self.try_perturb(rng, value)
            .expect("value within OUE domain")
    }
}

/// Server-side accumulator for OUE reports with the unbiased estimator
/// `ĉ(v) = (n_v − n·q) / (p − q)`.
///
/// `PartialEq` compares the raw counts (and the mechanism constants), so
/// two aggregation pipelines can be asserted bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct OueAggregator {
    counts: Vec<u64>,
    total: u64,
    q: f64,
}

impl OueAggregator {
    /// Creates an aggregator matched to an [`Oue`] instance.
    pub fn new(oue: &Oue) -> Self {
        Self {
            counts: vec![0; oue.domain],
            total: 0,
            q: oue.q,
        }
    }

    /// Ingests one report.
    pub fn add(&mut self, report: &OueReport) {
        for &bit in &report.set_bits {
            self.counts[bit] += 1;
        }
        self.total += 1;
    }

    /// Ingests one report given as raw set-bit positions — the
    /// absorb-from-wire fast path: a decoder can stream positions straight
    /// off a byte buffer into the counts without materializing an
    /// [`OueReport`] (and its heap allocation) per user.
    ///
    /// Exactly equivalent to [`OueAggregator::add`] on a report with the
    /// same bits.
    ///
    /// # Panics
    ///
    /// Panics when a position is outside the domain; callers validate
    /// untrusted input first (as [`crate::GrrAggregator::add`] does for its
    /// index).
    pub fn add_bits(&mut self, bits: &[usize]) {
        for &bit in bits {
            self.counts[bit] += 1;
        }
        self.total += 1;
    }

    /// Number of reports ingested.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Domain size this aggregator was built for.
    pub fn domain(&self) -> usize {
        self.counts.len()
    }

    /// Folds another aggregator's bit counts into this one. Raw counts are
    /// plain integer sums, so merging is associative and commutative —
    /// shards can aggregate independently and combine in any order.
    ///
    /// # Panics
    ///
    /// Panics when the two aggregators were built for different domains.
    pub fn merge(&mut self, other: &OueAggregator) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge OUE aggregators over different domains"
        );
        debug_assert!(self.q == other.q);
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Raw per-bit counts — the full dynamic state of the aggregator.
    /// Exposed for snapshot serialization.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Overwrites the dynamic state from snapshotted raw counts.
    ///
    /// Validated against the OUE structural invariants: the count vector
    /// must match this aggregator's domain and no bit can have been set by
    /// more reports than were ingested.
    pub fn restore_counts(&mut self, counts: &[u64], total: u64) -> Result<()> {
        if counts.len() != self.counts.len() {
            return Err(LdpError::MalformedReport(format!(
                "OUE snapshot domain {} != aggregator domain {}",
                counts.len(),
                self.counts.len()
            )));
        }
        if let Some(&c) = counts.iter().find(|&&c| c > total) {
            return Err(LdpError::MalformedReport(format!(
                "OUE snapshot bit count {c} exceeds {total} reports"
            )));
        }
        self.counts.copy_from_slice(counts);
        self.total = total;
        Ok(())
    }

    /// Unbiased estimate of the number of users holding `v`.
    pub fn estimate(&self, v: usize) -> f64 {
        let n = self.total as f64;
        (self.counts[v] as f64 - n * self.q) / (Oue::P - self.q)
    }

    /// Unbiased estimates for the full domain.
    pub fn estimates(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|v| self.estimate(v)).collect()
    }

    /// Indices of the `m` largest estimates, descending (ties toward the
    /// smaller index).
    pub fn top_m(&self, m: usize) -> Vec<usize> {
        let est = self.estimates();
        let mut idx: Vec<usize> = (0..est.len()).collect();
        idx.sort_by(|&a, &b| est[b].partial_cmp(&est[a]).unwrap().then(a.cmp(&b)));
        idx.truncate(m);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Oue::new(1, eps(1.0)).is_err());
        let o = Oue::new(10, eps(1.0)).unwrap();
        assert!((o.q() - 1.0 / (1f64.exp() + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn out_of_domain_rejected() {
        let o = Oue::new(3, eps(1.0)).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        assert!(matches!(
            o.try_perturb(&mut rng, 3),
            Err(LdpError::ValueOutOfDomain { .. })
        ));
    }

    #[test]
    fn report_bits_sorted_and_in_domain() {
        let o = Oue::new(12, eps(0.5)).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for v in 0..12 {
            let r = o.perturb(&mut rng, v);
            assert!(r.set_bits().windows(2).all(|w| w[0] < w[1]));
            assert!(r.set_bits().iter().all(|&b| b < 12));
        }
    }

    #[test]
    fn empirical_bit_rates_match_p_and_q() {
        let o = Oue::new(6, eps(2.0)).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let n = 30_000;
        let mut ones_at_truth = 0u64;
        let mut ones_elsewhere = 0u64;
        for _ in 0..n {
            let r = o.perturb(&mut rng, 4);
            for &b in r.set_bits() {
                if b == 4 {
                    ones_at_truth += 1;
                } else {
                    ones_elsewhere += 1;
                }
            }
        }
        let p_hat = ones_at_truth as f64 / n as f64;
        let q_hat = ones_elsewhere as f64 / (n as f64 * 5.0);
        assert!((p_hat - 0.5).abs() < 0.01, "p̂={p_hat}");
        assert!((q_hat - o.q()).abs() < 0.01, "q̂={q_hat}");
    }

    #[test]
    fn estimator_recovers_distribution() {
        let o = Oue::new(5, eps(1.5)).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut agg = OueAggregator::new(&o);
        let n = 40_000;
        for i in 0..n {
            let v = if i % 2 == 0 { 1 } else { 3 };
            agg.add(&o.perturb(&mut rng, v));
        }
        assert!((agg.estimate(1) - 0.5 * n as f64).abs() < 0.03 * n as f64);
        assert!((agg.estimate(3) - 0.5 * n as f64).abs() < 0.03 * n as f64);
        assert!(agg.estimate(0).abs() < 0.03 * n as f64);
        let top = agg.top_m(2);
        assert!(top.contains(&1) && top.contains(&3));
    }

    #[test]
    fn merge_equals_single_aggregation() {
        let o = Oue::new(6, eps(1.0)).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let reports: Vec<OueReport> = (0..500).map(|i| o.perturb(&mut rng, i % 6)).collect();
        let mut whole = OueAggregator::new(&o);
        let mut left = OueAggregator::new(&o);
        let mut right = OueAggregator::new(&o);
        for (i, r) in reports.iter().enumerate() {
            whole.add(r);
            if i % 2 == 0 {
                left.add(r);
            } else {
                right.add(r);
            }
        }
        right.merge(&left); // merge in the "wrong" order on purpose
        assert_eq!(right.total(), whole.total());
        assert_eq!(right.estimates(), whole.estimates());
    }

    #[test]
    fn from_set_bits_round_trips_and_validates() {
        let o = Oue::new(8, eps(1.0)).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        for v in 0..8 {
            let r = o.perturb(&mut rng, v);
            let rebuilt = OueReport::from_set_bits(r.set_bits().to_vec()).unwrap();
            assert_eq!(rebuilt, r);
        }
        assert!(matches!(
            OueReport::from_set_bits(vec![3, 3]),
            Err(LdpError::MalformedReport(_))
        ));
        assert!(matches!(
            OueReport::from_set_bits(vec![5, 2]),
            Err(LdpError::MalformedReport(_))
        ));
        assert!(OueReport::from_set_bits(Vec::new()).is_ok());
    }

    #[test]
    fn add_bits_equals_add() {
        let o = Oue::new(10, eps(1.0)).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(8);
        let mut via_report = OueAggregator::new(&o);
        let mut via_bits = OueAggregator::new(&o);
        for i in 0..200 {
            let r = o.perturb(&mut rng, i % 10);
            via_report.add(&r);
            via_bits.add_bits(r.set_bits());
        }
        assert_eq!(via_report, via_bits);
    }

    #[test]
    fn oue_beats_grr_variance_on_large_domains() {
        // The reason the paper switches to OUE for the ck² refinement grid.
        let d = 100;
        let e = 1.0;
        let grr_var = crate::theory::grr_variance(d, e, 10_000.0);
        let oue_var = crate::theory::oue_variance(e, 10_000.0);
        assert!(oue_var < grr_var);
    }
}
