//! Privacy amplification by subsampling, and the cumulative user-level
//! budget ledger the continual extraction mode spends against.
//!
//! When each epoch runs the mechanism over a Bernoulli sample of the
//! population (every user included independently with probability `q`),
//! an ε-LDP report costs the *sampled* user ε — but against an observer
//! of the whole epoch the effective guarantee tightens to
//!
//! ```text
//! ε' = ln(1 + q·(e^ε − 1))
//! ```
//!
//! the classic amplification-by-subsampling bound (Balle et al. 2018;
//! "Privacy Amplification by Subsampling in Time Domain" applies it
//! epoch-wise exactly as here). Two limits anchor the formula: `q = 1`
//! recovers ε (no sampling, no amplification), and as `q → 0` the bound
//! decays like `q·(e^ε − 1)` — rare participation is cheap.
//!
//! [`BudgetLedger`] turns the per-epoch bound into a *user-level*
//! guarantee over the whole continual run: amplified epoch costs add by
//! sequential composition (every epoch may observe the same user), and
//! the ledger refuses any charge that would push the cumulative spend
//! past the configured total with a typed
//! [`BudgetExhausted`](LdpError::BudgetExhausted) error — the driver
//! stops extracting instead of silently overdrawing.

use crate::budget::{Epsilon, LdpError, Result};

/// The subsampling-amplified budget: `ε' = ln(1 + rate·(e^ε − 1))`.
///
/// `rate` is the Bernoulli sampling probability and must lie in
/// `(0, 1]`; `rate = 1` returns `base` unchanged. The result is computed
/// via `ln_1p`/`exp_m1` for accuracy at small rates and clamped to
/// `base`, so `amplified ≤ base` holds *exactly*, never just up to
/// rounding.
///
/// # Errors
///
/// [`LdpError::ValueOutOfRange`] when `rate` is outside `(0, 1]` or not
/// finite.
pub fn amplified_epsilon(base: Epsilon, rate: f64) -> Result<Epsilon> {
    if !rate.is_finite() || rate <= 0.0 || rate > 1.0 {
        return Err(LdpError::ValueOutOfRange {
            value: rate,
            lo: 0.0,
            hi: 1.0,
        });
    }
    if rate == 1.0 {
        return Ok(base);
    }
    let amplified = (rate * base.value().exp_m1()).ln_1p().min(base.value());
    Epsilon::new(amplified)
}

/// The sampling rate that achieves a target amplified budget: the
/// inverse of [`amplified_epsilon`], `q = (e^ε' − 1) / (e^ε − 1)`.
///
/// Useful for planning: given a per-epoch base ε and a desired effective
/// ε' per epoch, how aggressively must the driver subsample?
///
/// # Errors
///
/// [`LdpError::InvalidEpsilon`] when `target > base` (amplification can
/// only shrink a budget, so no rate achieves it).
pub fn rate_for_amplified(base: Epsilon, target: Epsilon) -> Result<f64> {
    if target.value() > base.value() {
        return Err(LdpError::InvalidEpsilon(target.value()));
    }
    Ok((target.value().exp_m1() / base.value().exp_m1()).min(1.0))
}

/// One accepted epoch charge, as recorded by the [`BudgetLedger`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochCharge {
    /// Zero-based index of the epoch (assigned in charge order).
    pub epoch: usize,
    /// The per-report base budget the epoch's mechanism ran under.
    pub base: Epsilon,
    /// The Bernoulli sampling rate the epoch used.
    pub rate: f64,
    /// The amplified cost actually debited: `ln(1 + rate·(e^base − 1))`.
    pub amplified: Epsilon,
}

/// A cumulative user-level privacy ledger for continual extraction.
///
/// Every epoch observes (a sample of) the same sliding-window
/// population, so epoch costs compose *sequentially*: the ledger debits
/// each epoch's amplified ε and refuses — with a typed
/// [`LdpError::BudgetExhausted`] — any charge that would push the total
/// spend past the configured budget. The check and the debit use the
/// same floating-point sum, so the invariant `spent() ≤ total()` holds
/// exactly for every accepted sequence of charges.
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    total: Epsilon,
    spent: f64,
    charges: Vec<EpochCharge>,
}

impl BudgetLedger {
    /// Opens a ledger holding `total` of user-level budget.
    pub fn new(total: Epsilon) -> Self {
        Self {
            total,
            spent: 0.0,
            charges: Vec::new(),
        }
    }

    /// Charges one epoch: computes the amplified cost of running an
    /// ε-`base` mechanism over a Bernoulli `rate`-sample, debits it, and
    /// returns it.
    ///
    /// # Errors
    ///
    /// * [`LdpError::ValueOutOfRange`] — `rate` outside `(0, 1]` (the
    ///   ledger is left untouched);
    /// * [`LdpError::BudgetExhausted`] — accepting the charge would
    ///   overdraw the budget. The ledger is left untouched, so a caller
    ///   may retry with a smaller rate or base.
    pub fn charge(&mut self, base: Epsilon, rate: f64) -> Result<Epsilon> {
        let amplified = amplified_epsilon(base, rate)?;
        let next = self.spent + amplified.value();
        if next > self.total.value() {
            return Err(LdpError::BudgetExhausted {
                requested: amplified.value(),
                remaining: self.remaining(),
            });
        }
        self.charges.push(EpochCharge {
            epoch: self.charges.len(),
            base,
            rate,
            amplified,
        });
        self.spent = next;
        Ok(amplified)
    }

    /// The configured user-level budget.
    pub fn total(&self) -> Epsilon {
        self.total
    }

    /// Cumulative amplified spend across all accepted epochs.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget still available (never negative).
    pub fn remaining(&self) -> f64 {
        (self.total.value() - self.spent).max(0.0)
    }

    /// All accepted charges, in epoch order.
    pub fn charges(&self) -> &[EpochCharge] {
        &self.charges
    }

    /// Number of epochs charged so far.
    pub fn epochs(&self) -> usize {
        self.charges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn matches_closed_form() {
        let base = eps(4.0);
        let got = amplified_epsilon(base, 0.35).unwrap().value();
        let want = (1.0 + 0.35 * (4.0f64.exp() - 1.0)).ln();
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn full_rate_is_identity_and_low_rate_amplifies() {
        let base = eps(2.0);
        assert_eq!(amplified_epsilon(base, 1.0).unwrap(), base);
        let small = amplified_epsilon(base, 0.01).unwrap().value();
        // Near q → 0 the bound behaves like q·(e^ε − 1).
        assert!(small < 0.07, "small-rate bound too loose: {small}");
        assert!(small > 0.0);
    }

    #[test]
    fn invalid_rates_are_typed_errors() {
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                amplified_epsilon(eps(1.0), bad),
                Err(LdpError::ValueOutOfRange { .. })
            ));
        }
    }

    #[test]
    fn rate_inverts_amplification() {
        let base = eps(4.0);
        let target = amplified_epsilon(base, 0.2).unwrap();
        let rate = rate_for_amplified(base, target).unwrap();
        assert!((rate - 0.2).abs() < 1e-12, "rate={rate}");
        assert_eq!(rate_for_amplified(base, base).unwrap(), 1.0);
        assert!(rate_for_amplified(eps(1.0), eps(2.0)).is_err());
    }

    #[test]
    fn ledger_charges_until_exhausted_then_refuses() {
        let base = eps(4.0);
        let per_epoch = amplified_epsilon(base, 0.35).unwrap().value();
        let mut ledger = BudgetLedger::new(eps(per_epoch * 3.5));
        for epoch in 0..3 {
            let amplified = ledger.charge(base, 0.35).unwrap();
            assert_eq!(ledger.charges()[epoch].epoch, epoch);
            assert!((amplified.value() - per_epoch).abs() < 1e-12);
        }
        let before = (ledger.spent(), ledger.epochs());
        let err = ledger.charge(base, 0.35).unwrap_err();
        match err {
            LdpError::BudgetExhausted {
                requested,
                remaining,
            } => {
                assert!((requested - per_epoch).abs() < 1e-12);
                assert!(remaining < per_epoch);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        // A refused charge leaves the ledger untouched…
        assert_eq!((ledger.spent(), ledger.epochs()), before);
        // …and a smaller follow-up charge can still fit.
        assert!(ledger.charge(eps(0.05), 1.0).is_ok());
        assert!(ledger.spent() <= ledger.total().value());
    }

    #[test]
    fn ledger_accounting_is_exact() {
        let mut ledger = BudgetLedger::new(eps(1.0));
        ledger.charge(eps(0.5), 1.0).unwrap();
        ledger.charge(eps(0.5), 1.0).unwrap();
        assert!(ledger.spent() <= 1.0);
        assert_eq!(ledger.remaining(), 1.0 - ledger.spent());
        assert!(matches!(
            ledger.charge(eps(1e-9), 1.0),
            Err(LdpError::BudgetExhausted { .. })
        ));
    }
}
