//! The Piecewise Mechanism for one-dimensional numeric values
//! (Wang et al., "Collecting and Analyzing Data from Smart Device Users with
//! Local Differential Privacy", 2019).
//!
//! Used by the PatternLDP baseline to perturb sampled series values: for an
//! input `t ∈ [−1, 1]` the output lands in `[−C, C]` with a high-probability
//! plateau `[l(t), r(t)]` around the truth, and the estimator is unbiased.

use crate::budget::{Epsilon, LdpError, Result};
use rand::{Rng, RngExt};

/// Piecewise Mechanism over the input range `[−1, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct PiecewiseMechanism {
    eps: Epsilon,
    /// Output range half-width `C = (e^{ε/2} + 1) / (e^{ε/2} − 1)`.
    c: f64,
    /// Probability mass of the central plateau.
    p_center: f64,
}

impl PiecewiseMechanism {
    /// Creates the mechanism for budget ε.
    pub fn new(eps: Epsilon) -> Self {
        let half = (eps.value() / 2.0).exp();
        Self {
            eps,
            c: (half + 1.0) / (half - 1.0),
            p_center: half / (half + 1.0),
        }
    }

    /// Budget this instance satisfies.
    pub fn epsilon(&self) -> Epsilon {
        self.eps
    }

    /// Output range half-width `C`.
    pub fn output_bound(&self) -> f64 {
        self.c
    }

    /// Left edge of the high-probability plateau for input `t`.
    fn l(&self, t: f64) -> f64 {
        (self.c + 1.0) / 2.0 * t - (self.c - 1.0) / 2.0
    }

    /// Perturbs `t ∈ [−1, 1]`, returning a value in `[−C, C]`.
    pub fn try_perturb<R: Rng + ?Sized>(&self, rng: &mut R, t: f64) -> Result<f64> {
        if !(-1.0..=1.0).contains(&t) || !t.is_finite() {
            return Err(LdpError::ValueOutOfRange {
                value: t,
                lo: -1.0,
                hi: 1.0,
            });
        }
        let l = self.l(t);
        let r = l + self.c - 1.0;
        let out = if rng.random_bool(self.p_center) {
            // Uniform on the plateau [l, r] (width C − 1).
            l + rng.random::<f64>() * (self.c - 1.0)
        } else {
            // Uniform on the side intervals [−C, l) ∪ (r, C], whose total
            // width is C + 1.
            let left_width = l + self.c;
            let u = rng.random::<f64>() * (self.c + 1.0);
            if u < left_width {
                -self.c + u
            } else {
                r + (u - left_width)
            }
        };
        Ok(out)
    }

    /// Panicking variant for validated inner loops; clamps tiny numeric
    /// overshoot (±1e-12) before checking.
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R, t: f64) -> f64 {
        let clamped = t.clamp(-1.0, 1.0);
        self.try_perturb(rng, clamped)
            .expect("clamped input is in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn pm(e: f64) -> PiecewiseMechanism {
        PiecewiseMechanism::new(Epsilon::new(e).unwrap())
    }

    #[test]
    fn output_stays_in_declared_range() {
        let m = pm(1.0);
        let c = m.output_bound();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        for i in 0..5000 {
            let t = -1.0 + 2.0 * (i as f64 / 4999.0);
            let y = m.perturb(&mut rng, t);
            assert!((-c..=c).contains(&y), "t={t} y={y} C={c}");
        }
    }

    #[test]
    fn rejects_out_of_range_inputs() {
        let m = pm(1.0);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        assert!(m.try_perturb(&mut rng, 1.5).is_err());
        assert!(m.try_perturb(&mut rng, f64::NAN).is_err());
    }

    #[test]
    fn estimator_is_unbiased() {
        let m = pm(2.0);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        for &t in &[-0.8, 0.0, 0.3, 1.0] {
            let n = 60_000;
            let mean: f64 = (0..n).map(|_| m.perturb(&mut rng, t)).sum::<f64>() / n as f64;
            assert!((mean - t).abs() < 0.05, "t={t} mean={mean}");
        }
    }

    #[test]
    fn plateau_receives_expected_mass() {
        let m = pm(1.5);
        let t = 0.25;
        let l = m.l(t);
        let r = l + m.output_bound() - 1.0;
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let n = 40_000;
        let inside = (0..n)
            .filter(|_| {
                let y = m.perturb(&mut rng, t);
                (l..=r).contains(&y)
            })
            .count();
        let frac = inside as f64 / n as f64;
        assert!(
            (frac - m.p_center).abs() < 0.01,
            "frac={frac} want={}",
            m.p_center
        );
    }

    #[test]
    fn larger_budget_shrinks_output_bound() {
        assert!(pm(4.0).output_bound() < pm(1.0).output_bound());
        assert!(pm(0.1).output_bound() > 10.0);
    }

    #[test]
    fn perturb_clamps_numeric_overshoot() {
        let m = pm(1.0);
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        // Exactly representable overshoot from upstream arithmetic.
        let y = m.perturb(&mut rng, 1.0 + 1e-13);
        assert!(y.is_finite());
    }
}
