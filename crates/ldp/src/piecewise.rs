//! The Piecewise Mechanism for one-dimensional numeric values
//! (Wang et al., "Collecting and Analyzing Data from Smart Device Users with
//! Local Differential Privacy", 2019).
//!
//! Used by the PatternLDP baseline to perturb sampled series values: for an
//! input `t ∈ [−1, 1]` the output lands in `[−C, C]` with a high-probability
//! plateau `[l(t), r(t)]` around the truth, and the estimator is unbiased.

use crate::budget::{Epsilon, LdpError, Result};
use rand::{Rng, RngExt};

/// Piecewise Mechanism over the input range `[−1, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiecewiseMechanism {
    eps: Epsilon,
    /// Output range half-width `C = (e^{ε/2} + 1) / (e^{ε/2} − 1)`.
    c: f64,
    /// Probability mass of the central plateau.
    p_center: f64,
}

impl PiecewiseMechanism {
    /// Creates the mechanism for budget ε.
    pub fn new(eps: Epsilon) -> Self {
        let half = (eps.value() / 2.0).exp();
        Self {
            eps,
            c: (half + 1.0) / (half - 1.0),
            p_center: half / (half + 1.0),
        }
    }

    /// Budget this instance satisfies.
    pub fn epsilon(&self) -> Epsilon {
        self.eps
    }

    /// Output range half-width `C`.
    pub fn output_bound(&self) -> f64 {
        self.c
    }

    /// Left edge of the high-probability plateau for input `t`.
    fn l(&self, t: f64) -> f64 {
        (self.c + 1.0) / 2.0 * t - (self.c - 1.0) / 2.0
    }

    /// Perturbs `t ∈ [−1, 1]`, returning a value in `[−C, C]`.
    pub fn try_perturb<R: Rng + ?Sized>(&self, rng: &mut R, t: f64) -> Result<f64> {
        if !(-1.0..=1.0).contains(&t) || !t.is_finite() {
            return Err(LdpError::ValueOutOfRange {
                value: t,
                lo: -1.0,
                hi: 1.0,
            });
        }
        let l = self.l(t);
        let r = l + self.c - 1.0;
        let out = if rng.random_bool(self.p_center) {
            // Uniform on the plateau [l, r] (width C − 1).
            l + rng.random::<f64>() * (self.c - 1.0)
        } else {
            // Uniform on the side intervals [−C, l) ∪ (r, C], whose total
            // width is C + 1.
            let left_width = l + self.c;
            let u = rng.random::<f64>() * (self.c + 1.0);
            if u < left_width {
                -self.c + u
            } else {
                r + (u - left_width)
            }
        };
        Ok(out)
    }

    /// Panicking variant for validated inner loops; clamps tiny numeric
    /// overshoot (±1e-12) before checking.
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R, t: f64) -> f64 {
        let clamped = t.clamp(-1.0, 1.0);
        self.try_perturb(rng, clamped)
            .expect("clamped input is in range")
    }

    /// Fixed-point scale for quantized reports: 20 fractional bits.
    ///
    /// Reports crossing a wire boundary are quantized to integers so the
    /// server-side sum is exact — associative and commutative regardless
    /// of shard merge order, which f64 addition cannot guarantee.
    pub const SCALE: i64 = 1 << 20;

    /// Quantizes a perturbed output to the fixed-point wire grid.
    pub fn quantize(&self, y: f64) -> i64 {
        (y * Self::SCALE as f64).round() as i64
    }

    /// Largest magnitude a valid quantized report can carry (`⌈C·SCALE⌉`).
    pub fn quantized_bound(&self) -> i64 {
        (self.c * Self::SCALE as f64).ceil() as i64
    }
}

/// Server-side aggregator for quantized Piecewise reports.
///
/// Holds an exact integer sum (`i128`, so overflow is out of reach for any
/// realistic population) plus a report count; the mean estimator is
/// unbiased for the mean of the true inputs. Because the state is pure
/// integer arithmetic, [`PiecewiseAggregator::merge`] is associative and
/// commutative — shards combine in any order with bit-identical results.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseAggregator {
    mechanism: PiecewiseMechanism,
    sum: i128,
    total: u64,
}

impl PiecewiseAggregator {
    /// Creates an empty aggregator for the given mechanism.
    pub fn new(mechanism: PiecewiseMechanism) -> Self {
        Self {
            mechanism,
            sum: 0,
            total: 0,
        }
    }

    /// The mechanism this aggregator expects reports from.
    pub fn mechanism(&self) -> &PiecewiseMechanism {
        &self.mechanism
    }

    /// Ingests one quantized report, rejecting values outside the
    /// mechanism's declared output range (untrusted wire input).
    pub fn add(&mut self, report: i64) -> Result<()> {
        let bound = self.mechanism.quantized_bound();
        if report.abs() > bound {
            return Err(LdpError::ValueOutOfRange {
                value: report as f64 / PiecewiseMechanism::SCALE as f64,
                lo: -self.mechanism.output_bound(),
                hi: self.mechanism.output_bound(),
            });
        }
        self.sum += i128::from(report);
        self.total += 1;
        Ok(())
    }

    /// Number of reports ingested.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Folds another aggregator's exact integer state into this one.
    ///
    /// # Panics
    ///
    /// Panics when the two aggregators were built for different mechanisms
    /// (different ε means different output bounds, so the sums are not
    /// comparable).
    pub fn merge(&mut self, other: &PiecewiseAggregator) {
        assert_eq!(
            self.mechanism, other.mechanism,
            "cannot merge piecewise aggregators over different mechanisms"
        );
        self.sum += other.sum;
        self.total += other.total;
    }

    /// Exact integer sum of all quantized reports — the full dynamic state
    /// alongside [`PiecewiseAggregator::total`]. Exposed for snapshot
    /// serialization.
    pub fn sum(&self) -> i128 {
        self.sum
    }

    /// Overwrites the dynamic state from a snapshotted sum.
    ///
    /// Validated against the mechanism's declared output range: `total`
    /// in-range reports can never sum past `total · quantized_bound` in
    /// magnitude, so anything beyond that is a forged snapshot.
    pub fn restore_sum(&mut self, sum: i128, total: u64) -> Result<()> {
        let bound = i128::from(total) * i128::from(self.mechanism.quantized_bound());
        if sum.abs() > bound {
            return Err(LdpError::MalformedReport(format!(
                "piecewise snapshot sum {sum} exceeds bound {bound} for {total} reports"
            )));
        }
        self.sum = sum;
        self.total = total;
        Ok(())
    }

    /// Unbiased estimate of the mean true input, or `None` when no reports
    /// have arrived.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        Some(self.sum as f64 / self.total as f64 / PiecewiseMechanism::SCALE as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn pm(e: f64) -> PiecewiseMechanism {
        PiecewiseMechanism::new(Epsilon::new(e).unwrap())
    }

    #[test]
    fn output_stays_in_declared_range() {
        let m = pm(1.0);
        let c = m.output_bound();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        for i in 0..5000 {
            let t = -1.0 + 2.0 * (i as f64 / 4999.0);
            let y = m.perturb(&mut rng, t);
            assert!((-c..=c).contains(&y), "t={t} y={y} C={c}");
        }
    }

    #[test]
    fn rejects_out_of_range_inputs() {
        let m = pm(1.0);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        assert!(m.try_perturb(&mut rng, 1.5).is_err());
        assert!(m.try_perturb(&mut rng, f64::NAN).is_err());
    }

    #[test]
    fn estimator_is_unbiased() {
        let m = pm(2.0);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        for &t in &[-0.8, 0.0, 0.3, 1.0] {
            let n = 60_000;
            let mean: f64 = (0..n).map(|_| m.perturb(&mut rng, t)).sum::<f64>() / n as f64;
            assert!((mean - t).abs() < 0.05, "t={t} mean={mean}");
        }
    }

    #[test]
    fn plateau_receives_expected_mass() {
        let m = pm(1.5);
        let t = 0.25;
        let l = m.l(t);
        let r = l + m.output_bound() - 1.0;
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let n = 40_000;
        let inside = (0..n)
            .filter(|_| {
                let y = m.perturb(&mut rng, t);
                (l..=r).contains(&y)
            })
            .count();
        let frac = inside as f64 / n as f64;
        assert!(
            (frac - m.p_center).abs() < 0.01,
            "frac={frac} want={}",
            m.p_center
        );
    }

    #[test]
    fn larger_budget_shrinks_output_bound() {
        assert!(pm(4.0).output_bound() < pm(1.0).output_bound());
        assert!(pm(0.1).output_bound() > 10.0);
    }

    #[test]
    fn perturb_clamps_numeric_overshoot() {
        let m = pm(1.0);
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        // Exactly representable overshoot from upstream arithmetic.
        let y = m.perturb(&mut rng, 1.0 + 1e-13);
        assert!(y.is_finite());
    }

    #[test]
    fn quantization_error_is_sub_grid() {
        let m = pm(1.0);
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        for _ in 0..200 {
            let y = m.perturb(&mut rng, 0.3);
            let q = m.quantize(y);
            assert!(q.abs() <= m.quantized_bound());
            let back = q as f64 / PiecewiseMechanism::SCALE as f64;
            assert!((back - y).abs() <= 0.5 / PiecewiseMechanism::SCALE as f64);
        }
    }

    #[test]
    fn aggregated_mean_is_unbiased() {
        let m = pm(2.0);
        let mut rng = ChaCha12Rng::seed_from_u64(6);
        let mut agg = PiecewiseAggregator::new(m);
        let t = 0.4;
        for _ in 0..60_000 {
            agg.add(m.quantize(m.perturb(&mut rng, t))).unwrap();
        }
        let mean = agg.mean().unwrap();
        assert!((mean - t).abs() < 0.05, "mean={mean}");
        assert!(PiecewiseAggregator::new(m).mean().is_none());
    }

    #[test]
    fn merged_shards_equal_single_aggregator() {
        let m = pm(1.5);
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let reports: Vec<i64> = (0..900)
            .map(|i| m.quantize(m.perturb(&mut rng, -1.0 + 2.0 * (i as f64 / 899.0))))
            .collect();

        let mut whole = PiecewiseAggregator::new(m);
        for &q in &reports {
            whole.add(q).unwrap();
        }
        let mut shards: Vec<PiecewiseAggregator> =
            (0..3).map(|_| PiecewiseAggregator::new(m)).collect();
        for (i, &q) in reports.iter().enumerate() {
            shards[i % 3].add(q).unwrap();
        }
        let mut merged = shards[1].clone();
        merged.merge(&shards[2]);
        merged.merge(&shards[0]);
        // Integer state: exact equality, not approximate.
        assert_eq!(merged, whole);
        assert_eq!(merged.total(), 900);
    }

    #[test]
    fn add_rejects_out_of_bound_wire_values() {
        let m = pm(1.0);
        let mut agg = PiecewiseAggregator::new(m);
        assert!(agg.add(m.quantized_bound() + 1).is_err());
        assert!(agg.add(-(m.quantized_bound() + 1)).is_err());
        assert_eq!(agg.total(), 0);
    }

    #[test]
    #[should_panic(expected = "different mechanisms")]
    fn merge_rejects_mismatched_mechanisms() {
        let mut a = PiecewiseAggregator::new(pm(1.0));
        let b = PiecewiseAggregator::new(pm(2.0));
        a.merge(&b);
    }
}
