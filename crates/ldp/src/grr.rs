//! Generalized Randomized Response (k-RR) with unbiased frequency
//! aggregation — the paper's `Φ(·)` for length and sub-shape estimation.

use crate::budget::{Epsilon, LdpError, Result};
use rand::{Rng, RngExt};

/// Generalized Randomized Response over a categorical domain `{0, …, d−1}`.
///
/// Reports the true value with probability `p = e^ε / (e^ε + d − 1)` and
/// each other value with probability `q = 1 / (e^ε + d − 1)`; the ratio
/// `p / q = e^ε` gives exactly ε-LDP.
#[derive(Debug, Clone)]
pub struct Grr {
    domain: usize,
    eps: Epsilon,
    p: f64,
    q: f64,
}

impl Grr {
    /// Creates the mechanism for a domain of `domain ≥ 2` items.
    pub fn new(domain: usize, eps: Epsilon) -> Result<Self> {
        if domain < 2 {
            return Err(LdpError::InvalidDomain(domain));
        }
        let e = eps.exp();
        let denom = e + domain as f64 - 1.0;
        Ok(Self {
            domain,
            eps,
            p: e / denom,
            q: 1.0 / denom,
        })
    }

    /// Domain size `d`.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Budget this instance satisfies.
    pub fn epsilon(&self) -> Epsilon {
        self.eps
    }

    /// Truth-retention probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Per-alternative flip probability `q`.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Perturbs one value.
    ///
    /// # Errors
    ///
    /// Returns an error when `value ≥ d` — perturbing out-of-domain data
    /// would silently void the privacy accounting.
    pub fn try_perturb<R: Rng + ?Sized>(&self, rng: &mut R, value: usize) -> Result<usize> {
        if value >= self.domain {
            return Err(LdpError::ValueOutOfDomain {
                value,
                domain: self.domain,
            });
        }
        if rng.random_bool(self.p) {
            Ok(value)
        } else {
            // Uniform over the d−1 other values.
            let mut other = rng.random_range(0..self.domain - 1);
            if other >= value {
                other += 1;
            }
            Ok(other)
        }
    }

    /// Perturbs one value, panicking on out-of-domain input. Use in inner
    /// loops where the domain is enforced upstream.
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R, value: usize) -> usize {
        self.try_perturb(rng, value)
            .expect("value within GRR domain")
    }
}

/// Server-side accumulator producing unbiased count estimates
/// `ĉ(v) = (n_v − n·q) / (p − q)` from GRR reports.
///
/// `PartialEq` compares the raw counts (and the mechanism constants), so
/// two aggregation pipelines can be asserted bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct GrrAggregator {
    counts: Vec<u64>,
    total: u64,
    p: f64,
    q: f64,
}

impl GrrAggregator {
    /// Creates an aggregator matched to a [`Grr`] instance.
    pub fn new(grr: &Grr) -> Self {
        Self {
            counts: vec![0; grr.domain],
            total: 0,
            p: grr.p,
            q: grr.q,
        }
    }

    /// Ingests one perturbed report.
    pub fn add(&mut self, report: usize) {
        self.counts[report] += 1;
        self.total += 1;
    }

    /// Number of reports ingested.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Domain size this aggregator was built for.
    pub fn domain(&self) -> usize {
        self.counts.len()
    }

    /// Folds another aggregator's counts into this one. Raw counts are
    /// plain integer sums, so merging is associative and commutative —
    /// shards can aggregate independently and combine in any order.
    ///
    /// # Panics
    ///
    /// Panics when the two aggregators were built for different domains
    /// (merging them would be meaningless).
    pub fn merge(&mut self, other: &GrrAggregator) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge GRR aggregators over different domains"
        );
        debug_assert!(self.p == other.p && self.q == other.q);
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Raw per-value report counts — the full dynamic state of the
    /// aggregator (the mechanism constants are derivable from the round
    /// spec). Exposed for snapshot serialization.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Overwrites the dynamic state from snapshotted raw counts.
    ///
    /// The mechanism constants stay as constructed; only the counts and
    /// report total are replaced. Untrusted snapshot bytes are validated
    /// against the GRR structural invariants: the count vector must match
    /// this aggregator's domain and sum exactly to `total` (every report
    /// increments exactly one count).
    pub fn restore_counts(&mut self, counts: &[u64], total: u64) -> Result<()> {
        if counts.len() != self.counts.len() {
            return Err(LdpError::MalformedReport(format!(
                "GRR snapshot domain {} != aggregator domain {}",
                counts.len(),
                self.counts.len()
            )));
        }
        let sum: u64 = counts.iter().sum();
        if sum != total {
            return Err(LdpError::MalformedReport(format!(
                "GRR snapshot counts sum to {sum} but claim {total} reports"
            )));
        }
        self.counts.copy_from_slice(counts);
        self.total = total;
        Ok(())
    }

    /// Unbiased estimate of the number of users holding `v`.
    pub fn estimate(&self, v: usize) -> f64 {
        let n = self.total as f64;
        (self.counts[v] as f64 - n * self.q) / (self.p - self.q)
    }

    /// Unbiased estimates for the full domain.
    pub fn estimates(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|v| self.estimate(v)).collect()
    }

    /// The domain item with the largest estimated count (ties broken toward
    /// the smaller index, keeping results deterministic).
    pub fn argmax(&self) -> usize {
        let est = self.estimates();
        let mut best = 0;
        for (i, &e) in est.iter().enumerate() {
            if e > est[best] {
                best = i;
            }
        }
        best
    }

    /// Indices of the `m` largest estimates, descending (deterministic
    /// tie-break toward smaller indices).
    pub fn top_m(&self, m: usize) -> Vec<usize> {
        let est = self.estimates();
        let mut idx: Vec<usize> = (0..est.len()).collect();
        idx.sort_by(|&a, &b| est[b].partial_cmp(&est[a]).unwrap().then(a.cmp(&b)));
        idx.truncate(m);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn probabilities_satisfy_ldp_ratio() {
        for d in [2usize, 4, 10, 64] {
            for e in [0.1, 1.0, 4.0] {
                let g = Grr::new(d, eps(e)).unwrap();
                assert!((g.p() / g.q() - e.exp()).abs() < 1e-9);
                let total = g.p() + (d as f64 - 1.0) * g.q();
                assert!((total - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_degenerate_domain_and_values() {
        assert!(Grr::new(1, eps(1.0)).is_err());
        let g = Grr::new(3, eps(1.0)).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        assert!(g.try_perturb(&mut rng, 3).is_err());
    }

    #[test]
    fn output_always_in_domain() {
        let g = Grr::new(5, eps(0.5)).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for v in 0..5 {
            for _ in 0..200 {
                assert!(g.perturb(&mut rng, v) < 5);
            }
        }
    }

    #[test]
    fn empirical_truth_rate_matches_p() {
        let g = Grr::new(8, eps(2.0)).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let n = 40_000;
        let kept = (0..n).filter(|_| g.perturb(&mut rng, 3) == 3).count();
        let rate = kept as f64 / n as f64;
        assert!((rate - g.p()).abs() < 0.01, "rate {rate} vs p {}", g.p());
    }

    #[test]
    fn estimator_is_unbiased_on_skewed_input() {
        // 70% hold item 0, 30% item 1, domain 4.
        let g = Grr::new(4, eps(1.0)).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut agg = GrrAggregator::new(&g);
        let n = 50_000;
        for i in 0..n {
            let v = if i % 10 < 7 { 0 } else { 1 };
            agg.add(g.perturb(&mut rng, v));
        }
        assert!((agg.estimate(0) - 0.7 * n as f64).abs() < 0.03 * n as f64);
        assert!((agg.estimate(1) - 0.3 * n as f64).abs() < 0.03 * n as f64);
        assert!(agg.estimate(2).abs() < 0.03 * n as f64);
        assert_eq!(agg.argmax(), 0);
        assert_eq!(agg.top_m(2), vec![0, 1]);
    }

    #[test]
    fn estimates_sum_to_total() {
        // Identity Σ_v ĉ(v) = n holds exactly for GRR.
        let g = Grr::new(6, eps(1.5)).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let mut agg = GrrAggregator::new(&g);
        for i in 0..5000 {
            agg.add(g.perturb(&mut rng, i % 6));
        }
        let sum: f64 = agg.estimates().iter().sum();
        assert!((sum - 5000.0).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_single_aggregation() {
        let g = Grr::new(5, eps(1.0)).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(6);
        let reports: Vec<usize> = (0..999).map(|i| g.perturb(&mut rng, i % 5)).collect();
        let mut whole = GrrAggregator::new(&g);
        for &r in &reports {
            whole.add(r);
        }
        // Split into three shards, merge the last two into the first in
        // reverse order.
        let mut shards: Vec<GrrAggregator> = (0..3).map(|_| GrrAggregator::new(&g)).collect();
        for (i, &r) in reports.iter().enumerate() {
            shards[i % 3].add(r);
        }
        let (first, rest) = shards.split_at_mut(1);
        for shard in rest.iter().rev() {
            first[0].merge(shard);
        }
        assert_eq!(first[0].total(), whole.total());
        assert_eq!(first[0].estimates(), whole.estimates());
    }

    #[test]
    #[should_panic(expected = "different domains")]
    fn merge_rejects_mismatched_domains() {
        let mut a = GrrAggregator::new(&Grr::new(3, eps(1.0)).unwrap());
        let b = GrrAggregator::new(&Grr::new(4, eps(1.0)).unwrap());
        a.merge(&b);
    }

    #[test]
    fn top_m_handles_ties_deterministically() {
        let g = Grr::new(4, eps(1.0)).unwrap();
        let agg = GrrAggregator::new(&g);
        // No reports: all estimates equal (zero); ties break by index.
        assert_eq!(agg.top_m(2), vec![0, 1]);
        assert_eq!(agg.top_m(10), vec![0, 1, 2, 3]);
    }
}
