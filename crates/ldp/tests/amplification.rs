//! Property tests for privacy amplification by subsampling and the
//! continual budget ledger: the closed form must stay inside its bounds
//! for arbitrary parameters, and the ledger must never over-spend across
//! arbitrary charge sequences — these are the invariants the continual
//! extraction mode's user-level privacy claim rests on.

use privshape_ldp::{amplified_epsilon, rate_for_amplified, BudgetLedger, Epsilon, LdpError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Subsampling can only help: `ln(1 + q(e^ε − 1)) ≤ ε` for every
    /// rate in (0, 1], with equality at q = 1, and the amplified value
    /// is still a positive, valid budget.
    #[test]
    fn amplified_never_exceeds_base(
        eps in 0.01f64..12.0,
        rate in 0.0001f64..1.0,
    ) {
        let base = Epsilon::new(eps).unwrap();
        let amplified = amplified_epsilon(base, rate).unwrap();
        prop_assert!(amplified.value() > 0.0);
        prop_assert!(amplified.value() <= base.value());
        // The boundary is exact, and every partial rate stays below it.
        let full = amplified_epsilon(base, 1.0).unwrap();
        prop_assert_eq!(full.value(), base.value());
        prop_assert!(amplified.value() <= full.value());
    }

    /// More sampling costs more: the amplified budget is monotone
    /// non-decreasing in the sampling rate.
    #[test]
    fn amplified_is_monotone_in_rate(
        eps in 0.01f64..12.0,
        lo in 0.0001f64..1.0,
        hi in 0.0001f64..1.0,
    ) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let base = Epsilon::new(eps).unwrap();
        let at_lo = amplified_epsilon(base, lo).unwrap();
        let at_hi = amplified_epsilon(base, hi).unwrap();
        prop_assert!(at_lo.value() <= at_hi.value());
    }

    /// The inverse solves the forward map: amplifying at
    /// `rate_for_amplified(base, target)` lands on `target` (up to
    /// floating-point noise), and the rate is a valid probability.
    #[test]
    fn rate_inverts_amplification(
        eps in 0.05f64..10.0,
        target_frac in 0.05f64..1.0,
    ) {
        let base = Epsilon::new(eps).unwrap();
        let target = Epsilon::new(eps * target_frac).unwrap();
        let rate = rate_for_amplified(base, target).unwrap();
        prop_assert!(rate > 0.0 && rate <= 1.0);
        let round_trip = amplified_epsilon(base, rate).unwrap();
        prop_assert!(
            (round_trip.value() - target.value()).abs() <= 1e-9 * target.value().max(1.0),
            "round trip {} vs target {}", round_trip.value(), target.value()
        );
    }

    /// Across an arbitrary sequence of (eps, rate) charges the ledger
    /// never spends past its total: every accepted charge keeps
    /// `spent ≤ total` *exactly* (the refusal check and the debit use
    /// the same arithmetic), refused charges leave the ledger untouched,
    /// and the accounting identities (`spent + remaining = total`,
    /// charge log sums to spend) hold throughout.
    #[test]
    fn ledger_never_overspends(
        total in 0.1f64..30.0,
        charges in prop::collection::vec((0.01f64..6.0, 0.0001f64..1.0), 0..40),
    ) {
        let mut ledger = BudgetLedger::new(Epsilon::new(total).unwrap());
        let mut accepted = 0usize;
        for (eps, rate) in charges {
            let base = Epsilon::new(eps).unwrap();
            let spent_before = ledger.spent();
            match ledger.charge(base, rate) {
                Ok(amplified) => {
                    accepted += 1;
                    prop_assert!(amplified.value() <= base.value());
                    prop_assert!(ledger.spent() <= ledger.total().value());
                    prop_assert!(ledger.spent() >= spent_before);
                }
                Err(LdpError::BudgetExhausted { requested, remaining }) => {
                    // A refusal is honest (the charge really would not
                    // fit) and side-effect free.
                    prop_assert!(requested > remaining);
                    prop_assert_eq!(ledger.spent(), spent_before);
                }
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
            prop_assert!(
                (ledger.spent() + ledger.remaining() - ledger.total().value()).abs() < 1e-9
                    || ledger.remaining() == 0.0
            );
        }
        prop_assert_eq!(ledger.epochs(), accepted);
        let logged: f64 = ledger.charges().iter().map(|c| c.amplified.value()).sum();
        prop_assert!((logged - ledger.spent()).abs() < 1e-9);
    }
}
