//! Property tests for the LDP primitives: the ε-LDP probability bounds and
//! estimator identities must hold for arbitrary parameters, not just the
//! handful in the unit tests.

use privshape_ldp::{Epsilon, ExpMech, Grr, Oue, PiecewiseMechanism};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn grr_probabilities_are_a_distribution_with_exact_ratio(
        d in 2usize..200,
        eps in 0.05f64..8.0,
    ) {
        let grr = Grr::new(d, Epsilon::new(eps).unwrap()).unwrap();
        let total = grr.p() + (d as f64 - 1.0) * grr.q();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!((grr.p() / grr.q() - eps.exp()).abs() / eps.exp() < 1e-9);
        prop_assert!(grr.p() > grr.q());
    }

    #[test]
    fn grr_reports_stay_in_domain(
        d in 2usize..50,
        eps in 0.1f64..6.0,
        value_frac in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let grr = Grr::new(d, Epsilon::new(eps).unwrap()).unwrap();
        let value = ((value_frac * d as f64) as usize).min(d - 1);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for _ in 0..20 {
            prop_assert!(grr.perturb(&mut rng, value) < d);
        }
    }

    #[test]
    fn oue_flip_probabilities_satisfy_eps(
        d in 2usize..100,
        eps in 0.05f64..8.0,
    ) {
        let oue = Oue::new(d, Epsilon::new(eps).unwrap()).unwrap();
        // OUE's privacy bound: (p(1−q)) / (q(1−p)) = e^ε with p = 1/2.
        let p = Oue::P;
        let q = oue.q();
        let ratio = (p * (1.0 - q)) / (q * (1.0 - p));
        prop_assert!((ratio - eps.exp()).abs() / eps.exp() < 1e-9);
    }

    #[test]
    fn em_probabilities_form_distribution_and_bound_ratio(
        scores in prop::collection::vec(0.0f64..1.0, 1..20),
        eps in 0.05f64..8.0,
    ) {
        let em = ExpMech::new(Epsilon::new(eps).unwrap());
        let probs = em.probabilities(&scores);
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let max = probs.iter().copied().fold(0.0f64, f64::max);
        let min = probs.iter().copied().fold(1.0f64, f64::min);
        // Scores live in [0,1] with Δ=1 ⇒ ratio bounded by e^{ε/2}.
        prop_assert!(max / min <= (eps / 2.0).exp() * (1.0 + 1e-9));
    }

    #[test]
    fn em_select_returns_valid_index(
        scores in prop::collection::vec(0.0f64..1.0, 1..20),
        eps in 0.1f64..8.0,
        seed in 0u64..500,
    ) {
        let em = ExpMech::new(Epsilon::new(eps).unwrap());
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let idx = em.select(&mut rng, &scores).unwrap();
        prop_assert!(idx < scores.len());
    }

    #[test]
    fn piecewise_output_always_within_bound(
        eps in 0.1f64..8.0,
        t in -1.0f64..1.0,
        seed in 0u64..500,
    ) {
        let pm = PiecewiseMechanism::new(Epsilon::new(eps).unwrap());
        let c = pm.output_bound();
        prop_assert!(c > 1.0);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for _ in 0..20 {
            let y = pm.perturb(&mut rng, t);
            prop_assert!((-c..=c).contains(&y));
        }
    }

    #[test]
    fn epsilon_composition_laws(a in 0.01f64..10.0, b in 0.01f64..10.0) {
        let ea = Epsilon::new(a).unwrap();
        let eb = Epsilon::new(b).unwrap();
        prop_assert!((ea.sequential(eb).value() - (a + b)).abs() < 1e-12);
        prop_assert!((ea.parallel(eb).value() - a.max(b)).abs() < 1e-12);
        // Parallel never exceeds sequential.
        prop_assert!(ea.parallel(eb).value() <= ea.sequential(eb).value());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// GRR's estimator identity Σ_v ĉ(v) = n holds for every report set.
    #[test]
    fn grr_estimates_sum_to_population(
        d in 2usize..12,
        eps in 0.2f64..4.0,
        n in 1usize..400,
        seed in 0u64..100,
    ) {
        use privshape_ldp::GrrAggregator;
        let grr = Grr::new(d, Epsilon::new(eps).unwrap()).unwrap();
        let mut agg = GrrAggregator::new(&grr);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for i in 0..n {
            agg.add(grr.perturb(&mut rng, i % d));
        }
        let sum: f64 = agg.estimates().iter().sum();
        prop_assert!((sum - n as f64).abs() < 1e-6 * n as f64 + 1e-6);
    }
}
