//! Property tests for the shape trie: structural invariants that must hold
//! for arbitrary expansion/pruning schedules.

use privshape_timeseries::is_compressed;
use privshape_trie::{BigramSet, ShapeTrie};
use proptest::prelude::*;

/// A random schedule of expansion rounds with optional pruning.
#[derive(Debug, Clone)]
struct Round {
    /// Prune to this many nodes after counting (None = no pruning).
    keep: Option<usize>,
}

fn rounds_strategy() -> impl Strategy<Value = Vec<Round>> {
    prop::collection::vec(
        prop_oneof![
            Just(Round { keep: None }),
            (1usize..10).prop_map(|keep| Round { keep: Some(keep) }),
        ],
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_candidates_are_compressed_and_prefix_closed(
        t in 2usize..7,
        rounds in rounds_strategy(),
    ) {
        let mut trie = ShapeTrie::new(t).unwrap();
        for (i, round) in rounds.iter().enumerate() {
            let level = i + 1;
            let created = trie.expand_next_level(None);
            // Deterministic pseudo-frequencies.
            for (j, &id) in created.iter().enumerate() {
                trie.set_freq(id, ((j * 37 + level * 11) % 23) as f64);
            }
            if let Some(keep) = round.keep {
                trie.prune_top_m(level, keep).unwrap();
            }
            let candidates = trie.candidates(level).unwrap();
            for (_, shape) in &candidates {
                prop_assert_eq!(shape.len(), level);
                prop_assert!(is_compressed(shape));
                prop_assert!(shape.max_index().unwrap() < t);
            }
            // Prefix closure: every level-ℓ candidate's (ℓ−1)-prefix is a
            // path of the trie (its parent), though possibly pruned dead.
            if level >= 2 {
                if let Some(keep) = round.keep {
                    prop_assert!(candidates.len() <= keep.max(1) * (t - 1));
                }
            }
        }
    }

    #[test]
    fn unconstrained_expansion_counts_match_formula(t in 2usize..6, depth in 1usize..4) {
        let mut trie = ShapeTrie::new(t).unwrap();
        for level in 1..=depth {
            let created = trie.expand_next_level(None);
            // Closed form: t·(t−1)^{level−1} nodes at each level.
            let formula = t * (t - 1).pow(level as u32 - 1);
            prop_assert_eq!(created.len(), formula, "level {}", level);
            prop_assert_eq!(trie.live_nodes(level).unwrap().len(), formula);
        }
    }

    #[test]
    fn pruning_keeps_exactly_the_top_m_by_frequency(
        t in 3usize..7,
        m in 1usize..8,
        freqs_seed in 0u64..1000,
    ) {
        let mut trie = ShapeTrie::new(t).unwrap();
        let created = trie.expand_next_level(None);
        let mut state = freqs_seed;
        let mut freqs: Vec<(usize, f64)> = Vec::new();
        for &id in &created {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let f = (state >> 33) as f64;
            trie.set_freq(id, f);
            freqs.push((id, f));
        }
        trie.prune_top_m(1, m).unwrap();
        let live = trie.live_nodes(1).unwrap();
        prop_assert_eq!(live.len(), m.min(t));
        // The minimum surviving frequency is >= the maximum pruned one.
        let live_min = live.iter().map(|&id| trie.freq(id)).fold(f64::INFINITY, f64::min);
        let dead_max = freqs
            .iter()
            .filter(|(id, _)| !live.contains(id))
            .map(|&(_, f)| f)
            .fold(f64::NEG_INFINITY, f64::max);
        if m < t {
            prop_assert!(live_min >= dead_max);
        }
    }

    /// The packed candidate table must agree with the per-node `path()`
    /// reconstruction (rows, ids, and order) for arbitrary expand/prune
    /// schedules, and its rows must stay prefix-closed in the flat buffer:
    /// every level-ℓ row's (ℓ−1)-prefix is the path of some level-(ℓ−1)
    /// node.
    #[test]
    fn candidate_table_matches_path_reconstruction(
        t in 2usize..7,
        rounds in rounds_strategy(),
    ) {
        let mut trie = ShapeTrie::new(t).unwrap();
        for (i, round) in rounds.iter().enumerate() {
            let level = i + 1;
            let created = trie.expand_next_level(None);
            for (j, &id) in created.iter().enumerate() {
                trie.set_freq(id, ((j * 31 + level * 7) % 19) as f64);
            }
            if let Some(keep) = round.keep {
                trie.prune_top_m(level, keep).unwrap();
            }
            let (ids, table) = trie.candidate_table(level).unwrap();
            let legacy = trie.candidates(level).unwrap();
            prop_assert_eq!(table.len(), legacy.len());
            prop_assert_eq!(table.total_symbols(), legacy.len() * level);
            for (row, (&id, (legacy_id, shape))) in ids.iter().zip(&legacy).enumerate() {
                prop_assert_eq!(id, *legacy_id);
                prop_assert_eq!(table.row(row), shape.symbols());
                prop_assert_eq!(trie.path_slice(id), shape.symbols());
            }
            if level >= 2 {
                // Prefix closure through the flat buffer: each row's
                // prefix is some previous level's path (parent may be
                // pruned dead, so search all nodes via the previous
                // level's table built before pruning is irrelevant —
                // check against every node id's path at level − 1).
                for row in table.rows() {
                    let prefix = &row[..level - 1];
                    let found = (0..trie.node_count())
                        .any(|id| trie.path_slice(id) == prefix);
                    prop_assert!(found, "orphan row prefix");
                }
            }
        }
    }

    #[test]
    fn bigram_constrained_expansion_is_a_subset(
        t in 3usize..6,
        allowed_bits in prop::collection::vec(any::<bool>(), 36),
    ) {
        let mut allowed = BigramSet::new(t);
        let mut idx = 0;
        for x in 0..t {
            for y in 0..t {
                if x != y && allowed_bits[idx % allowed_bits.len()] {
                    allowed.insert(
                        privshape_timeseries::Symbol::from_index(x as u8),
                        privshape_timeseries::Symbol::from_index(y as u8),
                    );
                }
                idx += 1;
            }
        }
        let mut constrained = ShapeTrie::new(t).unwrap();
        constrained.expand_next_level(None);
        let created = constrained.expand_next_level(Some(&allowed));
        prop_assert_eq!(created.len(), allowed.len());
        for id in created {
            let shape = constrained.path(id);
            let pair = (shape.get(0).unwrap(), shape.get(1).unwrap());
            prop_assert!(allowed.contains(pair.0, pair.1));
        }
    }
}
