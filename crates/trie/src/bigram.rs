//! Sets of permitted sub-shapes (ordered symbol pairs) used to constrain
//! trie expansion in PrivShape (§IV-B).

use privshape_timeseries::Symbol;

/// A set of ordered symbol pairs `(x, y)` with `x ≠ y`, stored as a dense
/// `t × t` boolean matrix for O(1) membership tests in the expansion loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigramSet {
    alphabet: usize,
    allowed: Vec<bool>,
}

impl BigramSet {
    /// Empty set over an alphabet of size `t`.
    pub fn new(alphabet: usize) -> Self {
        Self {
            alphabet,
            allowed: vec![false; alphabet * alphabet],
        }
    }

    /// Set containing every valid (distinct-component) pair — expanding with
    /// this is equivalent to unconstrained expansion.
    pub fn full(alphabet: usize) -> Self {
        let mut set = Self::new(alphabet);
        for x in 0..alphabet {
            for y in 0..alphabet {
                if x != y {
                    set.allowed[x * alphabet + y] = true;
                }
            }
        }
        set
    }

    /// Alphabet size `t`.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Inserts a pair. Pairs with equal components are ignored: they cannot
    /// occur in compressed sequences, so admitting them would only leak
    /// noise into the expansion.
    pub fn insert(&mut self, from: Symbol, to: Symbol) {
        if from != to && from.index() < self.alphabet && to.index() < self.alphabet {
            self.allowed[from.index() * self.alphabet + to.index()] = true;
        }
    }

    /// Membership test.
    pub fn contains(&self, from: Symbol, to: Symbol) -> bool {
        from.index() < self.alphabet
            && to.index() < self.alphabet
            && self.allowed[from.index() * self.alphabet + to.index()]
    }

    /// Number of pairs in the set.
    pub fn len(&self) -> usize {
        self.allowed.iter().filter(|&&b| b).count()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        !self.allowed.iter().any(|&b| b)
    }

    /// Enumerates the contained pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, Symbol)> + '_ {
        (0..self.alphabet).flat_map(move |x| {
            (0..self.alphabet).filter_map(move |y| {
                if self.allowed[x * self.alphabet + y] {
                    Some((Symbol::from_index(x as u8), Symbol::from_index(y as u8)))
                } else {
                    None
                }
            })
        })
    }

    /// The canonical index of pair `(x, y)`, `x ≠ y`, in the paper's
    /// `t(t−1)`-sized report domain: pairs ordered row-major with the
    /// diagonal skipped.
    pub fn pair_to_domain_index(alphabet: usize, from: Symbol, to: Symbol) -> Option<usize> {
        let (x, y) = (from.index(), to.index());
        if x == y || x >= alphabet || y >= alphabet {
            return None;
        }
        let col = if y > x { y - 1 } else { y };
        Some(x * (alphabet - 1) + col)
    }

    /// Inverse of [`BigramSet::pair_to_domain_index`].
    pub fn domain_index_to_pair(alphabet: usize, index: usize) -> Option<(Symbol, Symbol)> {
        if index >= alphabet * (alphabet - 1) {
            return None;
        }
        let x = index / (alphabet - 1);
        let col = index % (alphabet - 1);
        let y = if col >= x { col + 1 } else { col };
        Some((Symbol::from_index(x as u8), Symbol::from_index(y as u8)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(c: char) -> Symbol {
        Symbol::from_char(c).unwrap()
    }

    #[test]
    fn insert_and_contains() {
        let mut s = BigramSet::new(4);
        assert!(s.is_empty());
        s.insert(sym('a'), sym('c'));
        assert!(s.contains(sym('a'), sym('c')));
        assert!(!s.contains(sym('c'), sym('a'))); // ordered pairs
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn diagonal_pairs_are_rejected() {
        let mut s = BigramSet::new(3);
        s.insert(sym('b'), sym('b'));
        assert!(s.is_empty());
    }

    #[test]
    fn full_set_has_t_times_t_minus_1_pairs() {
        for t in 2..6 {
            let s = BigramSet::full(t);
            assert_eq!(s.len(), t * (t - 1));
            assert_eq!(s.iter().count(), t * (t - 1));
        }
    }

    #[test]
    fn domain_index_round_trips() {
        for t in 2..8usize {
            let domain = t * (t - 1);
            for idx in 0..domain {
                let (x, y) = BigramSet::domain_index_to_pair(t, idx).unwrap();
                assert_ne!(x, y);
                assert_eq!(BigramSet::pair_to_domain_index(t, x, y), Some(idx));
            }
            assert!(BigramSet::domain_index_to_pair(t, domain).is_none());
        }
    }

    #[test]
    fn domain_index_rejects_diagonal_and_out_of_range() {
        assert_eq!(BigramSet::pair_to_domain_index(3, sym('a'), sym('a')), None);
        assert_eq!(BigramSet::pair_to_domain_index(3, sym('z'), sym('a')), None);
    }

    #[test]
    fn iter_matches_inserted_pairs() {
        let mut s = BigramSet::new(3);
        s.insert(sym('c'), sym('a'));
        s.insert(sym('a'), sym('b'));
        let pairs: Vec<String> = s.iter().map(|(x, y)| format!("{x}{y}")).collect();
        assert_eq!(pairs, vec!["ab", "ca"]); // row-major order
    }
}
