//! Arena-backed shape trie with level-wise expansion and pruning.

use crate::bigram::BigramSet;
use privshape_timeseries::{CandidateTable, Symbol, SymbolSeq, MAX_ALPHABET};
use std::fmt;

/// Index of a node in the trie arena.
pub type NodeId = usize;

/// Errors from trie operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrieError {
    /// Alphabet must be in `[2, MAX_ALPHABET]`.
    InvalidAlphabet(usize),
    /// A level index beyond the currently expanded depth.
    LevelOutOfRange {
        /// The requested level.
        level: usize,
        /// The trie's currently expanded depth.
        depth: usize,
    },
    /// A [`TrieDump`] violated a structural invariant and cannot be loaded.
    InvalidDump(String),
}

impl fmt::Display for TrieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrieError::InvalidAlphabet(t) => {
                write!(f, "trie alphabet must be in [2, {MAX_ALPHABET}], got {t}")
            }
            TrieError::LevelOutOfRange { level, depth } => {
                write!(f, "level {level} out of range (depth {depth})")
            }
            TrieError::InvalidDump(msg) => write!(f, "invalid trie dump: {msg}"),
        }
    }
}

impl std::error::Error for TrieError {}

#[derive(Debug, Clone)]
struct Node {
    symbol: Symbol,
    /// Start of this node's full root-to-node path in the trie's flat
    /// `paths` buffer; the path's length is the node's level. The path is
    /// materialized at creation, so no parent pointer is needed — the
    /// parent is simply the node owning the `level − 1` prefix.
    path_start: usize,
    /// 1-based level (= path length).
    level: usize,
    /// Estimated frequency set by the server after a user round.
    freq: f64,
    /// Dead nodes are pruned: excluded from candidate lists and expansion.
    alive: bool,
}

/// A trie over candidate shapes.
///
/// Level 0 is the (virtual) root; level `ℓ ≥ 1` holds candidates of length
/// `ℓ`. All paths respect the Compressive SAX invariant: a child's symbol
/// always differs from its parent's.
#[derive(Debug, Clone)]
pub struct ShapeTrie {
    alphabet: usize,
    nodes: Vec<Node>,
    /// `levels[ℓ]` lists the node ids at level `ℓ + 1` (level 0, the root,
    /// is implicit and not stored in the arena).
    levels: Vec<Vec<NodeId>>,
    /// Every node's full root-to-node path, written once at creation
    /// (`nodes[id]` owns `paths[path_start..path_start + level]`). Keeping
    /// paths flat and incremental lets [`ShapeTrie::candidate_table`] emit
    /// a whole level in O(total symbols) with no parent-pointer chasing.
    paths: Vec<Symbol>,
}

impl ShapeTrie {
    /// Creates an empty trie (root only) over an alphabet of size `t`.
    pub fn new(alphabet: usize) -> Result<Self, TrieError> {
        if !(2..=MAX_ALPHABET).contains(&alphabet) {
            return Err(TrieError::InvalidAlphabet(alphabet));
        }
        Ok(Self {
            alphabet,
            nodes: Vec::new(),
            levels: Vec::new(),
            paths: Vec::new(),
        })
    }

    /// Alphabet size `t`.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Number of expanded levels (excluding the root).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total number of nodes ever created (including pruned ones).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Expands one more level and returns the ids of the newly created
    /// nodes.
    ///
    /// From the root, the first expansion creates one node per alphabet
    /// symbol. Later expansions grow every *live* frontier node `…x` with
    /// children `y ≠ x`; when `allowed` is given, only edges with
    /// `(x, y) ∈ allowed` are created (PrivShape's sub-shape pruning).
    pub fn expand_next_level(&mut self, allowed: Option<&BigramSet>) -> Vec<NodeId> {
        let mut created = Vec::new();
        if self.levels.is_empty() {
            // Root → level 1: all symbols are candidates.
            for s in 0..self.alphabet {
                let id = self.nodes.len();
                let symbol = Symbol::from_index(s as u8);
                let path_start = self.paths.len();
                self.paths.push(symbol);
                self.nodes.push(Node {
                    symbol,
                    path_start,
                    level: 1,
                    freq: 0.0,
                    alive: true,
                });
                created.push(id);
            }
        } else {
            let frontier: Vec<NodeId> = self
                .levels
                .last()
                .expect("non-empty checked above")
                .iter()
                .copied()
                .filter(|&id| self.nodes[id].alive)
                .collect();
            for parent_id in frontier {
                let x = self.nodes[parent_id].symbol;
                let parent_start = self.nodes[parent_id].path_start;
                let parent_level = self.nodes[parent_id].level;
                for s in 0..self.alphabet {
                    let y = Symbol::from_index(s as u8);
                    if y == x {
                        continue;
                    }
                    if let Some(set) = allowed {
                        if !set.contains(x, y) {
                            continue;
                        }
                    }
                    let id = self.nodes.len();
                    // Child path = parent path + own symbol, written once
                    // at creation so later reads never chase pointers.
                    let path_start = self.paths.len();
                    self.paths
                        .extend_from_within(parent_start..parent_start + parent_level);
                    self.paths.push(y);
                    self.nodes.push(Node {
                        symbol: y,
                        path_start,
                        level: parent_level + 1,
                        freq: 0.0,
                        alive: true,
                    });
                    created.push(id);
                }
            }
        }
        self.levels.push(created.clone());
        created
    }

    /// Live node ids at `level` (1-based, as in the paper).
    pub fn live_nodes(&self, level: usize) -> Result<Vec<NodeId>, TrieError> {
        self.level_slice(level).map(|ids| {
            ids.iter()
                .copied()
                .filter(|&id| self.nodes[id].alive)
                .collect()
        })
    }

    /// The candidate shape (root-to-node path) for a node, borrowed from
    /// the trie's flat path buffer — O(1), no allocation, no
    /// parent-pointer walk.
    pub fn path_slice(&self, id: NodeId) -> &[Symbol] {
        let node = &self.nodes[id];
        &self.paths[node.path_start..node.path_start + node.level]
    }

    /// The candidate shape (root-to-node path) for a node, as an owned
    /// sequence.
    ///
    /// Compatibility shim over [`ShapeTrie::path_slice`]; prefer the slice
    /// (or [`ShapeTrie::candidate_table`] for whole levels) on hot paths —
    /// this allocates per call.
    pub fn path(&self, id: NodeId) -> SymbolSeq {
        SymbolSeq::from_symbols(self.path_slice(id).to_vec())
    }

    /// Live candidates at `level` as a packed [`CandidateTable`] plus the
    /// node ids backing each row, in creation order.
    ///
    /// Runs in O(total symbols at the level): each row is one `memcpy`
    /// out of the flat path buffer, and the table's LCP index
    /// ([`CandidateTable::lcp`]) is filled in the same pass. Creation
    /// order groups siblings under their parent, so consecutive rows with
    /// a common parent get `lcp = level − 1` by construction — exactly
    /// the structure the prefix-resumable batch scorers exploit.
    pub fn candidate_table(
        &self,
        level: usize,
    ) -> Result<(Vec<NodeId>, CandidateTable), TrieError> {
        let nodes = self.live_nodes(level)?;
        let mut table = CandidateTable::with_capacity(nodes.len(), nodes.len() * level);
        for &id in &nodes {
            table.push(self.path_slice(id));
        }
        Ok((nodes, table))
    }

    /// Live candidates (id + owned shape) at `level`, in creation order.
    ///
    /// Compatibility shim (allocates one `SymbolSeq` per row); hot paths
    /// use [`ShapeTrie::candidate_table`].
    pub fn candidates(&self, level: usize) -> Result<Vec<(NodeId, SymbolSeq)>, TrieError> {
        Ok(self
            .live_nodes(level)?
            .into_iter()
            .map(|id| (id, self.path(id)))
            .collect())
    }

    /// Records the server's estimated frequency for a node.
    pub fn set_freq(&mut self, id: NodeId, freq: f64) {
        self.nodes[id].freq = freq;
    }

    /// The recorded frequency.
    pub fn freq(&self, id: NodeId) -> f64 {
        self.nodes[id].freq
    }

    /// Prunes `level` down to its `m` most frequent live nodes (ties broken
    /// toward earlier creation, i.e. lexicographically earlier shapes).
    /// Returns the number of nodes pruned.
    pub fn prune_top_m(&mut self, level: usize, m: usize) -> Result<usize, TrieError> {
        let mut live = self.live_nodes(level)?;
        if live.len() <= m {
            return Ok(0);
        }
        // `total_cmp`, not `partial_cmp(..).unwrap()`: a NaN frequency
        // estimate must never panic the server mid-session (NaN orders
        // above every finite value here, i.e. it sorts as most frequent).
        live.sort_by(|&a, &b| {
            self.nodes[b]
                .freq
                .total_cmp(&self.nodes[a].freq)
                .then(a.cmp(&b))
        });
        let mut pruned = 0;
        for &id in &live[m..] {
            self.nodes[id].alive = false;
            pruned += 1;
        }
        Ok(pruned)
    }

    /// Prunes every live node at `level` whose frequency is strictly below
    /// `threshold` (the baseline's rule). Returns the number pruned.
    ///
    /// If the threshold would kill *every* candidate, the single most
    /// frequent one is kept alive: an empty frontier would deadlock the
    /// mechanism, and the paper's server always has at least one candidate
    /// to send.
    pub fn prune_threshold(&mut self, level: usize, threshold: f64) -> Result<usize, TrieError> {
        let live = self.live_nodes(level)?;
        let survivors = live
            .iter()
            .filter(|&&id| self.nodes[id].freq >= threshold)
            .count();
        if survivors == 0 {
            let keep = live.iter().copied().max_by(|&a, &b| {
                self.nodes[a]
                    .freq
                    .total_cmp(&self.nodes[b].freq)
                    .then(b.cmp(&a))
            });
            let mut pruned = 0;
            for id in live {
                if Some(id) != keep {
                    self.nodes[id].alive = false;
                    pruned += 1;
                }
            }
            return Ok(pruned);
        }
        let mut pruned = 0;
        for id in live {
            if self.nodes[id].freq < threshold {
                self.nodes[id].alive = false;
                pruned += 1;
            }
        }
        Ok(pruned)
    }

    /// Live leaf candidates (deepest level) with frequencies, sorted by
    /// descending frequency (creation-order tie-break).
    pub fn leaves_by_freq(&self) -> Vec<(NodeId, SymbolSeq, f64)> {
        let Some(last) = self.levels.last() else {
            return Vec::new();
        };
        let mut out: Vec<(NodeId, SymbolSeq, f64)> = last
            .iter()
            .copied()
            .filter(|&id| self.nodes[id].alive)
            .map(|id| (id, self.path(id), self.nodes[id].freq))
            .collect();
        out.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        out
    }

    fn level_slice(&self, level: usize) -> Result<&[NodeId], TrieError> {
        if level == 0 || level > self.levels.len() {
            return Err(TrieError::LevelOutOfRange {
                level,
                depth: self.levels.len(),
            });
        }
        Ok(&self.levels[level - 1])
    }

    /// Serializes the complete structural state of the trie — including
    /// pruned (dead) nodes, which later levels' creation order depends on.
    ///
    /// [`ShapeTrie::from_dump`] rebuilds a trie that is indistinguishable
    /// from this one: same node ids, same [`ShapeTrie::candidate_table`]
    /// row order (and therefore the same table fingerprint), same pruning
    /// tie-breaks.
    pub fn dump(&self) -> TrieDump {
        TrieDump {
            alphabet: self.alphabet,
            nodes: self
                .nodes
                .iter()
                .map(|n| NodeDump {
                    symbol: n.symbol.index() as u8,
                    path_start: n.path_start,
                    level: n.level,
                    freq_bits: n.freq.to_bits(),
                    alive: n.alive,
                })
                .collect(),
            levels: self.levels.clone(),
            paths: self.paths.iter().map(|s| s.index() as u8).collect(),
        }
    }

    /// Rebuilds a trie from a [`TrieDump`], validating every structural
    /// invariant so untrusted snapshot bytes cannot forge an inconsistent
    /// arena (out-of-range symbols, dangling path slices, level lists that
    /// disagree with the nodes they index).
    pub fn from_dump(dump: &TrieDump) -> Result<Self, TrieError> {
        if !(2..=MAX_ALPHABET).contains(&dump.alphabet) {
            return Err(TrieError::InvalidAlphabet(dump.alphabet));
        }
        let bad = |msg: String| TrieError::InvalidDump(msg);
        if let Some(&s) = dump.paths.iter().find(|&&s| s as usize >= dump.alphabet) {
            return Err(bad(format!(
                "path symbol {s} outside alphabet {}",
                dump.alphabet
            )));
        }
        let mut path_total = 0usize;
        for (id, n) in dump.nodes.iter().enumerate() {
            if n.level == 0 {
                return Err(bad(format!("node {id} has level 0")));
            }
            if n.path_start
                .checked_add(n.level)
                .is_none_or(|end| end > dump.paths.len())
            {
                return Err(bad(format!("node {id} path slice out of bounds")));
            }
            if dump.paths[n.path_start + n.level - 1] != n.symbol {
                return Err(bad(format!("node {id} symbol disagrees with its path")));
            }
            path_total += n.level;
        }
        if path_total != dump.paths.len() {
            return Err(bad(format!(
                "path buffer length {} != sum of node levels {path_total}",
                dump.paths.len()
            )));
        }
        let mut seen = vec![false; dump.nodes.len()];
        for (li, ids) in dump.levels.iter().enumerate() {
            for &id in ids {
                let Some(n) = dump.nodes.get(id) else {
                    return Err(bad(format!("level {} lists unknown node {id}", li + 1)));
                };
                if n.level != li + 1 {
                    return Err(bad(format!(
                        "node {id} at level {} listed under level {}",
                        n.level,
                        li + 1
                    )));
                }
                if std::mem::replace(&mut seen[id], true) {
                    return Err(bad(format!("node {id} listed twice")));
                }
            }
        }
        if let Some(id) = seen.iter().position(|&s| !s) {
            return Err(bad(format!("node {id} missing from the level lists")));
        }
        Ok(Self {
            alphabet: dump.alphabet,
            nodes: dump
                .nodes
                .iter()
                .map(|n| Node {
                    symbol: Symbol::from_index(n.symbol),
                    path_start: n.path_start,
                    level: n.level,
                    freq: f64::from_bits(n.freq_bits),
                    alive: n.alive,
                })
                .collect(),
            levels: dump.levels.clone(),
            paths: dump.paths.iter().map(|&s| Symbol::from_index(s)).collect(),
        })
    }
}

/// Serializable image of one trie node (see [`ShapeTrie::dump`]).
///
/// The frequency travels as raw IEEE-754 bits so a dump → load round trip
/// is bit-identical, never "close enough".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDump {
    /// Alphabet index of the node's own symbol.
    pub symbol: u8,
    /// Start of the node's root-to-node path in [`TrieDump::paths`].
    pub path_start: usize,
    /// 1-based level (= path length).
    pub level: usize,
    /// `f64::to_bits` of the node's estimated frequency.
    pub freq_bits: u64,
    /// Whether the node survived pruning.
    pub alive: bool,
}

/// Complete structural image of a [`ShapeTrie`], the unit the session
/// snapshot codec serializes. Produced by [`ShapeTrie::dump`], loaded (with
/// full validation) by [`ShapeTrie::from_dump`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrieDump {
    /// Alphabet size `t`.
    pub alphabet: usize,
    /// Every node ever created, in creation order (ids are indices).
    pub nodes: Vec<NodeDump>,
    /// `levels[ℓ]` lists the node ids at level `ℓ + 1`.
    pub levels: Vec<Vec<NodeId>>,
    /// The flat path buffer, as alphabet indices.
    pub paths: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes(trie: &ShapeTrie, level: usize) -> Vec<String> {
        trie.candidates(level)
            .unwrap()
            .into_iter()
            .map(|(_, s)| s.to_string())
            .collect()
    }

    #[test]
    fn construction_validates_alphabet() {
        assert!(ShapeTrie::new(1).is_err());
        assert!(ShapeTrie::new(27).is_err());
        assert!(ShapeTrie::new(2).is_ok());
    }

    #[test]
    fn first_expansion_yields_all_symbols() {
        let mut t = ShapeTrie::new(4).unwrap();
        let ids = t.expand_next_level(None);
        assert_eq!(ids.len(), 4);
        assert_eq!(shapes(&t, 1), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn expansion_respects_no_repeat_invariant() {
        let mut t = ShapeTrie::new(3).unwrap();
        t.expand_next_level(None);
        t.expand_next_level(None);
        let level2 = shapes(&t, 2);
        assert_eq!(level2, vec!["ab", "ac", "ba", "bc", "ca", "cb"]);
        t.expand_next_level(None);
        for s in shapes(&t, 3) {
            let seq = SymbolSeq::parse(&s).unwrap();
            assert!(privshape_timeseries::is_compressed(&seq), "{s}");
        }
    }

    #[test]
    fn fig5_expansion_counts() {
        // Fig. 5: t = 4 ⇒ 4 nodes at level 1, 12 at level 2.
        let mut t = ShapeTrie::new(4).unwrap();
        assert_eq!(t.expand_next_level(None).len(), 4);
        assert_eq!(t.expand_next_level(None).len(), 12);
        assert_eq!(t.expand_next_level(None).len(), 36); // 12 × 3
    }

    #[test]
    fn bigram_constrained_expansion() {
        // Fig. 6: only whitelisted sub-shapes may extend candidates.
        let mut t = ShapeTrie::new(4).unwrap();
        t.expand_next_level(None);
        let mut allowed = BigramSet::new(4);
        allowed.insert(
            Symbol::from_char('a').unwrap(),
            Symbol::from_char('b').unwrap(),
        );
        allowed.insert(
            Symbol::from_char('c').unwrap(),
            Symbol::from_char('d').unwrap(),
        );
        let created = t.expand_next_level(Some(&allowed));
        assert_eq!(created.len(), 2);
        assert_eq!(shapes(&t, 2), vec!["ab", "cd"]);
    }

    #[test]
    fn prune_top_m_keeps_most_frequent() {
        let mut t = ShapeTrie::new(3).unwrap();
        let ids = t.expand_next_level(None);
        t.set_freq(ids[0], 5.0);
        t.set_freq(ids[1], 20.0);
        t.set_freq(ids[2], 10.0);
        let pruned = t.prune_top_m(1, 2).unwrap();
        assert_eq!(pruned, 1);
        assert_eq!(shapes(&t, 1), vec!["b", "c"]);
        // Pruned nodes are not expanded.
        let created = t.expand_next_level(None);
        assert_eq!(created.len(), 4); // 2 live × (3 − 1)
    }

    #[test]
    fn prune_top_m_noop_when_under_m() {
        let mut t = ShapeTrie::new(3).unwrap();
        t.expand_next_level(None);
        assert_eq!(t.prune_top_m(1, 10).unwrap(), 0);
        assert_eq!(t.live_nodes(1).unwrap().len(), 3);
    }

    #[test]
    fn prune_threshold_filters_and_keeps_one_survivor() {
        let mut t = ShapeTrie::new(3).unwrap();
        let ids = t.expand_next_level(None);
        t.set_freq(ids[0], 1.0);
        t.set_freq(ids[1], 3.0);
        t.set_freq(ids[2], 2.0);
        assert_eq!(t.prune_threshold(1, 2.0).unwrap(), 1);
        assert_eq!(shapes(&t, 1), vec!["b", "c"]);
        // Threshold above every frequency still keeps the best node.
        let mut t2 = ShapeTrie::new(3).unwrap();
        let ids2 = t2.expand_next_level(None);
        t2.set_freq(ids2[2], 0.5);
        assert_eq!(t2.prune_threshold(1, 100.0).unwrap(), 2);
        assert_eq!(shapes(&t2, 1), vec!["c"]);
    }

    #[test]
    fn paths_reconstruct_full_shapes() {
        let mut t = ShapeTrie::new(3).unwrap();
        t.expand_next_level(None);
        t.expand_next_level(None);
        let created = t.expand_next_level(None);
        let all: Vec<String> = created.iter().map(|&id| t.path(id).to_string()).collect();
        assert!(all.contains(&"aba".to_string()));
        assert!(all.contains(&"acb".to_string()));
        assert!(all.iter().all(|s| s.len() == 3));
    }

    #[test]
    fn leaves_by_freq_sorts_descending() {
        let mut t = ShapeTrie::new(3).unwrap();
        t.expand_next_level(None);
        let ids = t.expand_next_level(None);
        for (i, &id) in ids.iter().enumerate() {
            t.set_freq(id, (i % 3) as f64);
        }
        let leaves = t.leaves_by_freq();
        assert_eq!(leaves.len(), 6);
        for w in leaves.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }

    #[test]
    fn level_bounds_are_checked() {
        let mut t = ShapeTrie::new(3).unwrap();
        assert!(t.live_nodes(1).is_err());
        t.expand_next_level(None);
        assert!(t.live_nodes(0).is_err());
        assert!(t.live_nodes(2).is_err());
        assert!(t.live_nodes(1).is_ok());
    }

    #[test]
    fn empty_trie_has_no_leaves() {
        let t = ShapeTrie::new(3).unwrap();
        assert!(t.leaves_by_freq().is_empty());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn candidate_table_matches_candidates() {
        let mut t = ShapeTrie::new(4).unwrap();
        for level in 1..=3 {
            let created = t.expand_next_level(None);
            for (j, &id) in created.iter().enumerate() {
                t.set_freq(id, (j % 5) as f64);
            }
            t.prune_top_m(level, 7).unwrap();
            let (ids, table) = t.candidate_table(level).unwrap();
            let legacy = t.candidates(level).unwrap();
            assert_eq!(ids.len(), legacy.len());
            assert_eq!(table.len(), legacy.len());
            for (row, (id, (legacy_id, shape))) in ids.iter().zip(&legacy).enumerate() {
                assert_eq!(id, legacy_id);
                assert_eq!(table.row(row), shape.symbols());
                assert_eq!(t.path_slice(*id), shape.symbols());
            }
        }
        assert!(t.candidate_table(0).is_err());
        assert!(t.candidate_table(4).is_err());
    }

    #[test]
    fn candidate_table_lcp_reflects_shared_parent_paths() {
        let mut t = ShapeTrie::new(4).unwrap();
        t.expand_next_level(None);
        t.expand_next_level(None);
        t.expand_next_level(None);
        let level = 3;
        let (ids, table) = t.candidate_table(level).unwrap();
        // Row 0 has no predecessor; every later row shares at least the
        // empty prefix and at most `level` symbols with its neighbour.
        assert_eq!(table.lcp(0), 0);
        for i in 1..table.len() {
            let expect = table
                .row(i - 1)
                .iter()
                .zip(table.row(i))
                .take_while(|(a, b)| a == b)
                .count();
            assert_eq!(table.lcp(i), expect);
            // Same-parent siblings (paths equal up to the last symbol)
            // share exactly level − 1 symbols.
            if t.path_slice(ids[i - 1])[..level - 1] == t.path_slice(ids[i])[..level - 1] {
                assert_eq!(table.lcp(i), level - 1);
            }
        }
        // Sibling grouping is real: most transitions at a full level are
        // same-parent (alphabet 4 ⇒ 36 rows from 12 parents).
        let deep = (1..table.len())
            .filter(|&i| table.lcp(i) == level - 1)
            .count();
        assert_eq!(deep, 24);
    }

    #[test]
    fn nan_frequencies_never_panic_pruning() {
        let mut t = ShapeTrie::new(3).unwrap();
        let ids = t.expand_next_level(None);
        t.set_freq(ids[0], f64::NAN);
        t.set_freq(ids[1], 2.0);
        t.set_freq(ids[2], 1.0);
        // total_cmp orders NaN above every finite value, so it survives
        // top-m pruning deterministically instead of panicking.
        t.prune_top_m(1, 2).unwrap();
        assert_eq!(t.live_nodes(1).unwrap().len(), 2);

        let mut t2 = ShapeTrie::new(3).unwrap();
        let ids2 = t2.expand_next_level(None);
        for &id in &ids2 {
            t2.set_freq(id, f64::NAN);
        }
        t2.prune_threshold(1, 5.0).unwrap();
        assert_eq!(t2.live_nodes(1).unwrap().len(), 1);
        t2.expand_next_level(None);
        let _ = t2.leaves_by_freq();
    }

    #[test]
    fn dump_round_trip_is_indistinguishable() {
        // Build a trie with real history: expansion, frequencies, pruning,
        // a NaN, another expansion — then dump/load and compare everything
        // observable, including candidate-table fingerprints.
        let mut t = ShapeTrie::new(4).unwrap();
        let ids = t.expand_next_level(None);
        for (i, &id) in ids.iter().enumerate() {
            t.set_freq(id, if i == 2 { f64::NAN } else { i as f64 });
        }
        t.prune_top_m(1, 3).unwrap();
        t.expand_next_level(None);

        let loaded = ShapeTrie::from_dump(&t.dump()).unwrap();
        assert_eq!(loaded.alphabet(), t.alphabet());
        assert_eq!(loaded.depth(), t.depth());
        assert_eq!(loaded.node_count(), t.node_count());
        for level in 1..=t.depth() {
            assert_eq!(
                loaded.live_nodes(level).unwrap(),
                t.live_nodes(level).unwrap()
            );
            let (ids_a, table_a) = t.candidate_table(level).unwrap();
            let (ids_b, table_b) = loaded.candidate_table(level).unwrap();
            assert_eq!(ids_a, ids_b);
            assert_eq!(table_a.fingerprint(), table_b.fingerprint());
        }
        for id in 0..t.node_count() {
            assert_eq!(loaded.freq(id).to_bits(), t.freq(id).to_bits());
        }
        // The loaded trie keeps evolving identically.
        let mut a = t.clone();
        let mut b = loaded;
        a.prune_top_m(2, 4).unwrap();
        b.prune_top_m(2, 4).unwrap();
        assert_eq!(a.expand_next_level(None), b.expand_next_level(None));
        assert_eq!(a.dump(), b.dump());
    }

    #[test]
    fn from_dump_rejects_forged_state() {
        let mut t = ShapeTrie::new(3).unwrap();
        t.expand_next_level(None);
        t.expand_next_level(None);
        let good = t.dump();
        assert!(ShapeTrie::from_dump(&good).is_ok());

        let mut d = good.clone();
        d.alphabet = 1;
        assert!(matches!(
            ShapeTrie::from_dump(&d),
            Err(TrieError::InvalidAlphabet(1))
        ));

        let mut d = good.clone();
        d.paths[0] = 9; // outside alphabet 3
        assert!(matches!(
            ShapeTrie::from_dump(&d),
            Err(TrieError::InvalidDump(_))
        ));

        let mut d = good.clone();
        d.nodes[0].path_start = usize::MAX; // overflow-checked slice
        assert!(matches!(
            ShapeTrie::from_dump(&d),
            Err(TrieError::InvalidDump(_))
        ));

        let mut d = good.clone();
        d.nodes[1].symbol = d.nodes[0].symbol; // disagrees with path
        assert!(matches!(
            ShapeTrie::from_dump(&d),
            Err(TrieError::InvalidDump(_))
        ));

        let mut d = good.clone();
        let wrong_level = d.levels[1][0];
        d.levels[0].push(wrong_level); // wrong level for that node
        assert!(matches!(
            ShapeTrie::from_dump(&d),
            Err(TrieError::InvalidDump(_))
        ));

        let mut d = good.clone();
        let dup = d.levels[0][0];
        d.levels[0].push(dup); // listed twice
        assert!(matches!(
            ShapeTrie::from_dump(&d),
            Err(TrieError::InvalidDump(_))
        ));

        let mut d = good.clone();
        d.levels[1].pop(); // a node missing from the level lists
        assert!(matches!(
            ShapeTrie::from_dump(&d),
            Err(TrieError::InvalidDump(_))
        ));
    }
}
