//! The shape trie at the heart of the baseline mechanism and PrivShape
//! (§III-C, §IV-B).
//!
//! The trie's level-`ℓ` nodes are candidate shapes of length `ℓ` — sequences
//! of SAX symbols with no adjacent repeats (the Compressive SAX invariant).
//! The server expands it level by level, records the estimated frequency of
//! each candidate, and prunes before the next expansion:
//!
//! * the **baseline** expands every live node to all `t − 1` children and
//!   prunes by an absolute frequency threshold `N`;
//! * **PrivShape** restricts child edges to the top-`c·k` frequent sub-shapes
//!   (bigrams) of that level and prunes candidates to the top-`c·k`.
//!
//! # Example
//!
//! ```
//! use privshape_trie::ShapeTrie;
//!
//! let mut trie = ShapeTrie::new(3).unwrap(); // alphabet {a, b, c}
//! let level1 = trie.expand_next_level(None); // "a", "b", "c"
//! assert_eq!(level1.len(), 3);
//! let level2 = trie.expand_next_level(None); // "ab", "ac", "ba", ...
//! assert_eq!(level2.len(), 6); // 3 × (3 − 1): no adjacent repeats
//! ```

mod bigram;
mod trie;

pub use bigram::BigramSet;
pub use trie::{NodeDump, NodeId, ShapeTrie, TrieDump, TrieError};
